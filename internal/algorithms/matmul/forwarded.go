package matmul

import (
	"fmt"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Forwarded is the physically honest systolic array: operand values are
// passed PE-to-PE through explicit forwarding (shift-register) nodes
// instead of being multicast from the edge, so operand traffic is linear
// in distance travelled rather than quadratic in consumers. This is the
// structure real systolic silicon has, and exactly the paper's "a mapping
// may compute [or carry] the same element at multiple points in space".
type Forwarded struct {
	Graph *fm.Graph
	Sched fm.Schedule
	// Out[i*n+j] produces C[i][j].
	Out []fm.NodeID
	N   int
	// Stride is the wavefront step in cycles.
	Stride int64
}

// BuildForwarded constructs the forwarded n x n systolic array on tgt:
// graph and schedule together, since the forwarding structure IS the
// mapping. The target grid must be at least n x n.
func BuildForwarded(n int, tgt fm.Target) *Forwarded {
	if n <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("matmul: invalid size %d", n))
	}
	if tgt.Grid.Width < n || tgt.Grid.Height < n {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("matmul: forwarded systolic needs %dx%d grid, have %dx%d",
			n, n, tgt.Grid.Width, tgt.Grid.Height))
	}
	// One wavefront step must cover a forward (copy + one hop) and a MAC;
	// the three per-PE event families are offset by 0/1/2 cycles inside a
	// step, so the step must also be >= 3 cycles.
	s := tgt.OpCycles(tech.OpFMA, 32)
	if v := tgt.OpCycles(tech.OpLogic, 32) + tgt.TransitCycles(1); v > s {
		s = v
	}
	if s < 3 {
		s = 3
	}

	b := fm.NewBuilder(fmt.Sprintf("matmul%d-systolic", n))
	var sched fm.Schedule
	at := func(id fm.NodeID, p geom.Point, t int64) {
		for int(id) >= len(sched) {
			sched = append(sched, fm.Assignment{})
		}
		sched[id] = fm.Assignment{Place: p, Time: t}
	}

	// Inputs on the west (A) and north (B) edges.
	aIn := make([]fm.NodeID, n*n)
	bIn := make([]fm.NodeID, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aIn[i*n+k] = b.Input(32)
			at(aIn[i*n+k], geom.Pt(0, i), int64(i+k)*s)
		}
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			bIn[k*n+j] = b.Input(32)
			at(bIn[k*n+j], geom.Pt(j, 0), int64(k+j)*s)
		}
	}

	// Forwarding registers: fa[i][k][j] holds A[i][k] at PE (j,i);
	// fb[k][j][i] holds B[k][j] at PE (j,i).
	fa := make([]fm.NodeID, n*n*n)
	fb := make([]fm.NodeID, n*n*n)
	faIdx := func(i, k, j int) int { return (i*n+k)*n + j }
	fbIdx := func(k, j, i int) int { return (k*n+j)*n + i }
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			fa[faIdx(i, k, 0)] = aIn[i*n+k]
			for j := 1; j < n; j++ {
				nd := b.Op(tech.OpLogic, 32, fa[faIdx(i, k, j-1)])
				at(nd, geom.Pt(j, i), int64(i+k+j)*s)
				fa[faIdx(i, k, j)] = nd
			}
		}
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			fb[fbIdx(k, j, 0)] = bIn[k*n+j]
			for i := 1; i < n; i++ {
				nd := b.Op(tech.OpLogic, 32, fb[fbIdx(k, j, i-1)])
				at(nd, geom.Pt(j, i), int64(k+j+i)*s+1)
				fb[fbIdx(k, j, i)] = nd
			}
		}
	}

	// MACs, output-stationary at PE (j,i).
	f := &Forwarded{N: n, Stride: s}
	f.Out = make([]fm.NodeID, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var prev fm.NodeID = -1
			for k := 0; k < n; k++ {
				deps := []fm.NodeID{fa[faIdx(i, k, j)], fb[fbIdx(k, j, i)]}
				if prev >= 0 {
					deps = append(deps, prev)
				}
				nd := b.Op(tech.OpFMA, 32, deps...)
				at(nd, geom.Pt(j, i), int64(i+j+k+1)*s+2)
				prev = nd
			}
			f.Out[i*n+j] = prev
			b.MarkOutput(prev)
		}
	}
	f.Graph = b.Build()
	f.Sched = sched
	return f
}

// Interpret runs the forwarded array semantically.
func (f *Forwarded) Interpret(a, bm []int64) []int64 {
	n := f.N
	if len(a) != n*n || len(bm) != n*n {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("matmul: inputs %d/%d for n=%d", len(a), len(bm), n))
	}
	inputs := append(append([]int64(nil), a...), bm...)
	vals, err := fm.Interpret(f.Graph, inputs, func(nd fm.NodeID, deps []int64) int64 {
		if len(deps) == 1 {
			return deps[0] // forwarding register
		}
		acc := deps[0] * deps[1]
		if len(deps) == 3 {
			acc += deps[2]
		}
		return acc
	})
	if err != nil {
		//lint:allow panic(unreachable: arity checked immediately above)
		panic(err) // arity checked above
	}
	out := make([]int64, n*n)
	for i, nd := range f.Out {
		out[i] = vals[nd]
	}
	return out
}
