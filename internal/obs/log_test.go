package obs_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// decodeLines parses a JSONL buffer into one map per line.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerJSONL(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewLogger(&buf, obs.LevelInfo)
	log.Info("listening", "addr", "127.0.0.1:8080", "n", 3)
	log.Warn("store recovered UNHEALTHY", "err", errors.New("segment torn"), "budget", 30*time.Second)

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %s", len(lines), buf.String())
	}
	first := lines[0]
	if first["level"] != "info" || first["msg"] != "listening" || first["addr"] != "127.0.0.1:8080" || first["n"] != float64(3) {
		t.Fatalf("first line: %v", first)
	}
	if _, hasTS := first["ts"]; hasTS {
		t.Fatalf("timestamp present without WithNow: %v", first)
	}
	second := lines[1]
	// Errors and durations normalize to strings so the line always
	// marshals and greps predictably.
	if second["err"] != "segment torn" || second["budget"] != "30s" || second["level"] != "warn" {
		t.Fatalf("second line: %v", second)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewLogger(&buf, obs.LevelWarn)
	log.Debug("d")
	log.Info("i")
	log.Warn("w")
	log.Error("e")
	lines := decodeLines(t, &buf)
	if len(lines) != 2 || lines[0]["msg"] != "w" || lines[1]["msg"] != "e" {
		t.Fatalf("min=warn kept %v", lines)
	}
}

func TestLoggerTimestampSource(t *testing.T) {
	var buf bytes.Buffer
	fixed := time.Date(2026, 8, 7, 1, 2, 3, 4, time.UTC)
	log := obs.NewLogger(&buf, obs.LevelInfo).WithNow(func() time.Time { return fixed })
	log.Info("x")
	lines := decodeLines(t, &buf)
	if lines[0]["ts"] != fixed.Format(time.RFC3339Nano) {
		t.Fatalf("ts %v, want %s", lines[0]["ts"], fixed.Format(time.RFC3339Nano))
	}
}

func TestLoggerOddKeyValue(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewLogger(&buf, obs.LevelInfo)
	log.Info("x", "dangling")
	lines := decodeLines(t, &buf)
	if lines[0]["dangling"] != "(MISSING)" {
		t.Fatalf("odd trailing key: %v", lines[0])
	}
}

func TestLoggerUnmarshalableValueFallsBack(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewLogger(&buf, obs.LevelInfo)
	log.Info("x", "ch", make(chan int))
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["msg"] != "x" || lines[0]["log_error"] == nil {
		t.Fatalf("marshal failure must fall back to the core line: %v", lines)
	}
}

func TestNilLoggerNoops(t *testing.T) {
	var log *obs.Logger
	if log.WithNow(time.Now) != nil {
		t.Fatalf("nil WithNow must return nil")
	}
	// Must not panic.
	log.Debug("d")
	log.Info("i", "k", "v")
	log.Warn("w")
	log.Error("e", "err", errors.New("x"))
}
