package workspan

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func runInPool(t *testing.T, f func(*Ctx)) {
	t.Helper()
	p := NewPool(4, WorkStealing)
	defer p.Close()
	p.Run(f)
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	const n = 10_000
	hits := make([]int32, n)
	runInPool(t, func(c *Ctx) {
		For(c, 0, n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEmptyAndTinyRanges(t *testing.T) {
	runInPool(t, func(c *Ctx) {
		calls := 0
		For(c, 5, 5, 10, func(lo, hi int) { calls++ })
		if calls != 0 {
			t.Errorf("empty range called body %d times", calls)
		}
		For(c, 3, 4, 10, func(lo, hi int) {
			if lo != 3 || hi != 4 {
				t.Errorf("tiny range = [%d,%d)", lo, hi)
			}
			calls++
		})
		if calls != 1 {
			t.Errorf("single-element range called %d times", calls)
		}
	})
}

func TestMapInto(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i
	}
	out := make([]int64, len(xs))
	runInPool(t, func(c *Ctx) {
		MapInto(c, xs, out, 32, func(x int) int64 { return int64(x * x) })
	})
	for i := range out {
		if out[i] != int64(i*i) {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000, 4096} {
		xs := make([]int64, n)
		var want int64
		for i := range xs {
			xs[i] = int64(i + 1)
			want += xs[i]
		}
		var got int64
		runInPool(t, func(c *Ctx) {
			got = Reduce(c, xs, 16, 0, func(a, b int64) int64 { return a + b })
		})
		if got != want {
			t.Errorf("n=%d: Reduce = %d, want %d", n, got, want)
		}
	}
}

func TestReduceMatchesSerialProperty(t *testing.T) {
	p := NewPool(4, WorkStealing)
	defer p.Close()
	f := func(raw []int32) bool {
		xs := make([]int64, len(raw))
		var want int64
		for i, r := range raw {
			xs[i] = int64(r)
			want += int64(r)
		}
		var got int64
		p.Run(func(c *Ctx) {
			got = Reduce(c, xs, 8, 0, func(a, b int64) int64 { return a + b })
		})
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanInclusive(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(i + 1)
		}
		out := make([]int64, n)
		runInPool(t, func(c *Ctx) {
			Scan(c, xs, out, 16, 0, func(a, b int64) int64 { return a + b })
		})
		var acc int64
		for i := range xs {
			acc += xs[i]
			if out[i] != acc {
				t.Fatalf("n=%d: out[%d] = %d, want %d", n, i, out[i], acc)
			}
		}
	}
}

func TestScanNonCommutativeOp(t *testing.T) {
	// Scan requires associativity only; use string-ish concat encoded in
	// int64 by a*31+b style folding being NOT associative — instead test
	// with max, associative and non-invertible.
	xs := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	out := make([]int64, len(xs))
	runInPool(t, func(c *Ctx) {
		Scan(c, xs, out, 2, -1<<62, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
	})
	want := []int64{3, 3, 4, 4, 5, 9, 9, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestFilter(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i
	}
	var got []int
	runInPool(t, func(c *Ctx) {
		got = Filter(c, xs, 32, func(x int) bool { return x%3 == 0 })
	})
	want := 0
	for _, v := range got {
		if v != want {
			t.Fatalf("Filter order broken: got %d, want %d", v, want)
		}
		want += 3
	}
	if len(got) != 334 {
		t.Errorf("len = %d, want 334", len(got))
	}
}

func TestFilterEmptyAndAll(t *testing.T) {
	runInPool(t, func(c *Ctx) {
		if got := Filter(c, []int{}, 4, func(int) bool { return true }); len(got) != 0 {
			t.Errorf("empty filter = %v", got)
		}
		xs := []int{1, 2, 3}
		if got := Filter(c, xs, 4, func(int) bool { return false }); len(got) != 0 {
			t.Errorf("none-pass filter = %v", got)
		}
		if got := Filter(c, xs, 1, func(int) bool { return true }); len(got) != 3 {
			t.Errorf("all-pass filter = %v", got)
		}
	})
}

func TestMergeSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 3, 100, 1000, 10_000} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		runInPool(t, func(c *Ctx) {
			MergeSort(c, xs, 32, func(a, b int) bool { return a < b })
		})
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: sort mismatch at %d", n, i)
			}
		}
	}
}

func TestMergeSortStable(t *testing.T) {
	type kv struct{ k, seq int }
	const n = 2000
	rng := rand.New(rand.NewSource(7))
	xs := make([]kv, n)
	for i := range xs {
		xs[i] = kv{k: rng.Intn(10), seq: i}
	}
	runInPool(t, func(c *Ctx) {
		MergeSort(c, xs, 16, func(a, b kv) bool { return a.k < b.k })
	})
	for i := 1; i < n; i++ {
		if xs[i-1].k > xs[i].k {
			t.Fatal("not sorted")
		}
		if xs[i-1].k == xs[i].k && xs[i-1].seq > xs[i].seq {
			t.Fatal("not stable")
		}
	}
}

func TestMergeSortSortedProperty(t *testing.T) {
	p := NewPool(4, WorkStealing)
	defer p.Close()
	f := func(raw []int16) bool {
		xs := make([]int, len(raw))
		for i, r := range raw {
			xs[i] = int(r)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		p.Run(func(c *Ctx) {
			MergeSort(c, xs, 4, func(a, b int) bool { return a < b })
		})
		for i := range want {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuicksort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 3, 17, 100, 1000, 10_000} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(500)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		runInPool(t, func(c *Ctx) {
			Quicksort(c, xs, 16, func(a, b int) bool { return a < b })
		})
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestQuicksortAdversarialShapes(t *testing.T) {
	shapes := map[string]func(n int) []int{
		"sorted": func(n int) []int {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = i
			}
			return xs
		},
		"reversed": func(n int) []int {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = n - i
			}
			return xs
		},
		"constant": func(n int) []int { return make([]int, n) },
		"sawtooth": func(n int) []int {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = i % 7
			}
			return xs
		},
	}
	for name, gen := range shapes {
		xs := gen(3000)
		want := append([]int(nil), xs...)
		sort.Ints(want)
		runInPool(t, func(c *Ctx) {
			Quicksort(c, xs, 32, func(a, b int) bool { return a < b })
		})
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("%s: mismatch at %d", name, i)
			}
		}
	}
}

func TestQuicksortProperty(t *testing.T) {
	p := NewPool(4, WorkStealing)
	defer p.Close()
	f := func(raw []int16) bool {
		xs := make([]int, len(raw))
		for i, r := range raw {
			xs[i] = int(r)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		p.Run(func(c *Ctx) {
			Quicksort(c, xs, 4, func(a, b int) bool { return a < b })
		})
		for i := range want {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrimitivesPanicOnBadArgs(t *testing.T) {
	runInPool(t, func(c *Ctx) {
		assertPanics(t, "For grain", func() { For(c, 0, 10, 0, func(lo, hi int) {}) })
		assertPanics(t, "Reduce grain", func() { Reduce(c, []int{1}, 0, 0, func(a, b int) int { return a + b }) })
		assertPanics(t, "Scan len", func() { Scan(c, []int{1, 2}, []int{1}, 1, 0, func(a, b int) int { return a + b }) })
		assertPanics(t, "MapInto len", func() { MapInto(c, []int{1, 2}, []int{1}, 1, func(x int) int { return x }) })
		assertPanics(t, "Filter grain", func() { Filter(c, []int{1}, 0, func(int) bool { return true }) })
		assertPanics(t, "MergeSort grain", func() { MergeSort(c, []int{1}, 0, func(a, b int) bool { return a < b }) })
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
