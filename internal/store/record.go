// On-disk format. A segment file is:
//
//	[8-byte segment magic "ATLSSEG1"]
//	[record]*
//
// and each record is CRC-framed and length-prefixed:
//
//	[4 bytes LE: payload length N]
//	[4 bytes LE: CRC32-C (Castagnoli) of the payload]
//	[N bytes: payload (JSON-encoded Entry)]
//
// The frame is the recovery contract: a reader scans records forward,
// verifying length sanity and checksum, and stops at the first frame
// that fails either test. Everything before that point is exactly what
// a crashed writer had durably committed; everything from it on is a
// torn tail (trailing zeros from a short write, a half-landed record,
// or bit-rot) and is discarded — never served.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// segMagic opens every segment file; a file without it is not (or no
// longer) a segment and is quarantined whole.
var segMagic = [8]byte{'A', 'T', 'L', 'S', 'S', 'E', 'G', '1'}

const (
	// frameHeader is the per-record framing overhead.
	frameHeader = 8
	// maxPayload bounds one record; a length field beyond it is framing
	// corruption, not a big record. Far above any real Entry (the
	// largest graphs the service materializes stay under a megabyte of
	// schedule JSON).
	maxPayload = 16 << 20
)

// castagnoli is the CRC32-C table, the polynomial with hardware support
// on both amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames payload onto buf and returns the extended buffer.
func appendRecord(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// errCorrupt marks the first broken frame of a scan; the offset where
// it was detected is the recovered prefix length.
type errCorrupt struct {
	off    int64
	reason string
}

func (e *errCorrupt) Error() string {
	return fmt.Sprintf("store: corrupt record at offset %d: %s", e.off, e.reason)
}

// scanRecords walks the framed records in data (a whole segment file,
// including magic). It calls apply for each intact payload in order and
// returns the byte offset of the durable prefix — the position just
// after the last intact record — together with the corruption that
// ended the scan (nil for a clean segment). A bad segment magic returns
// offset 0: nothing in the file is trustworthy.
func scanRecords(data []byte, apply func(payload []byte) error) (int64, int, error) {
	if len(data) < len(segMagic) || [8]byte(data[:8]) != segMagic {
		return 0, 0, &errCorrupt{off: 0, reason: "bad segment magic"}
	}
	off := int64(len(segMagic))
	n := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, n, nil
		}
		if len(rest) < frameHeader {
			return off, n, &errCorrupt{off: off, reason: "torn frame header"}
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		want := binary.LittleEndian.Uint32(rest[4:8])
		if plen > maxPayload {
			return off, n, &errCorrupt{off: off, reason: fmt.Sprintf("implausible record length %d", plen)}
		}
		if int64(len(rest)) < frameHeader+int64(plen) {
			return off, n, &errCorrupt{off: off, reason: "torn record body"}
		}
		payload := rest[frameHeader : frameHeader+int(plen)]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return off, n, &errCorrupt{off: off, reason: fmt.Sprintf("checksum %08x, frame says %08x", got, want)}
		}
		if err := apply(payload); err != nil {
			// The frame was intact but the payload is not a valid entry:
			// same verdict as a checksum failure — stop trusting here.
			return off, n, &errCorrupt{off: off, reason: err.Error()}
		}
		off += frameHeader + int64(plen)
		n++
	}
}

// encodeEntry renders one entry as a framed record payload.
func encodeEntry(e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("store: marshal entry: %w", err)
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("store: entry payload %d bytes exceeds %d", len(payload), maxPayload)
	}
	return payload, nil
}
