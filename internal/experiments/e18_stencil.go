package experiments

import (
	"math/rand"

	"repro/internal/algorithms/stencil"
	"repro/internal/fm"
	"repro/internal/stats"
)

// E18 reproduces the surface-to-volume locality claim implicit in both
// Yelick's communication-avoidance agenda and Dally's grid model: for an
// iterative stencil, a blocked decomposition's communication is the halo
// (constant per step, independent of slab width) while a locality-blind
// cyclic decomposition's communication scales with the whole state.
// Growing the problem makes the blocked mapping's comm/compute ratio
// vanish; the cyclic mapping's stays flat.
func E18() Result {
	const steps, p = 6, 4
	tgt := fm.DefaultTarget(p, 1)
	tgt.MemWordsPerNode = 1 << 20

	t := stats.NewTable("E18: Jacobi stencil halo exchange (4 processors, per-step bit-hops)",
		"width", "blocked halo", "cyclic traffic", "blocked comm/compute", "cyclic comm/compute")
	pass := true
	var firstBlocked float64
	var prevCyclic float64
	for i, width := range []int{32, 64, 128} {
		g, dom, err := stencil.Recurrence(steps, width).Materialize()
		if err != nil {
			return failure("E18", err)
		}
		blocked := stencil.HaloTraffic(g, dom, stencil.BlockedSchedule(dom, p, tgt))
		cyclic := stencil.HaloTraffic(g, dom, stencil.CyclicSchedule(dom, p, tgt))
		cb, err := fm.Evaluate(g, stencil.BlockedSchedule(dom, p, tgt), tgt, fm.EvalOptions{})
		if err != nil {
			return failure("E18", err)
		}
		cc, err := fm.Evaluate(g, stencil.CyclicSchedule(dom, p, tgt), tgt, fm.EvalOptions{})
		if err != nil {
			return failure("E18", err)
		}
		t.AddRow(width, blocked, cyclic,
			cb.WireEnergy/cb.ComputeEnergy, cc.WireEnergy/cc.ComputeEnergy)
		if i == 0 {
			firstBlocked = blocked
		} else {
			// Halo constant in width; cyclic grows roughly linearly.
			if blocked != firstBlocked {
				pass = false
			}
			if cyclic < 1.8*prevCyclic {
				pass = false
			}
		}
		prevCyclic = cyclic
		if blocked*2 >= cyclic {
			pass = false
		}
	}
	t.AddNote("blocked halo = 2*(p-1) words/step regardless of width: communication is the SURFACE, compute the VOLUME")
	// Message counts: Yelick's "number of distinct events" axis.
	gm, dm, err := stencil.Recurrence(steps, 64).Materialize()
	if err != nil {
		return failure("E18", err)
	}
	cbm, err := fm.Evaluate(gm, stencil.BlockedSchedule(dm, p, tgt), tgt, fm.EvalOptions{})
	if err != nil {
		return failure("E18", err)
	}
	ccm, err := fm.Evaluate(gm, stencil.CyclicSchedule(dm, p, tgt), tgt, fm.EvalOptions{})
	if err != nil {
		return failure("E18", err)
	}
	if cbm.Messages >= ccm.Messages {
		pass = false
	}
	t.AddNote("distinct messages at width 64: blocked %d vs cyclic %d — volume AND event count drop together", cbm.Messages, ccm.Messages)

	// Semantics: the recurrence computes the Jacobi iteration.
	rng := rand.New(rand.NewSource(18))
	init := make([]int64, 32)
	for i := range init {
		init[i] = rng.Int63n(100)
	}
	g, dom, err := stencil.Recurrence(steps, 32).Materialize()
	if err != nil {
		return failure("E18", err)
	}
	got := stencil.Interpret(g, dom, init)
	want := stencil.Reference(init, steps)
	for i := range want {
		if got[i] != want[i] {
			pass = false
		}
	}

	return Result{
		ID:    "E18",
		Claim: "stencil halo traffic is surface-sized under a blocked mapping and volume-sized under a locality-blind one; the comm/compute ratio vanishes with problem size only for the former",
		Table: t,
		Pass:  pass,
	}
}
