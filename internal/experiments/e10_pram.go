package experiments

import (
	"math"

	"repro/internal/algorithms/graphs"
	"repro/internal/pram"
	"repro/internal/stats"
)

// E10 reproduces Vishkin's position: work-efficient PRAM algorithms in
// the work-time framework, the XMT prefix-sum primitive, and BFS freed
// from the FIFO queue. Prefix sums must hit O(n) work and O(log n) steps;
// BFS level count must track the graph diameter rather than the vertex
// count; Brent's theorem (TimeOnP) must show near-linear simulated
// speedups while the serial queue offers none.
func E10() Result {
	t := stats.NewTable("E10: PRAM work-time framework",
		"algorithm", "n", "work", "steps", "bound", "within")
	pass := true

	// Work-efficient prefix sums.
	const n = 4096
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i)
	}
	m := pram.New(pram.EREW, 8*n+64)
	sums, err := pram.PrefixSums(m, in)
	if err != nil {
		return failure("E10", err)
	}
	if sums[n-1] != int64(n*(n-1)/2) {
		return failure("E10", constError("prefix sums wrong"))
	}
	mt := m.Metrics()
	logN := math.Log2(float64(n))
	okPS := float64(mt.Work) <= 6*n && float64(mt.Steps) <= 3*logN+6
	pass = pass && okPS
	t.AddRow("prefix sums (EREW)", n, mt.Work, mt.Steps,
		"W=O(n), T=O(log n)", verdict(okPS))

	// List ranking by pointer jumping.
	next := make([]int, 1024)
	for i := range next {
		next[i] = i + 1
	}
	next[len(next)-1] = -1
	lr := pram.New(pram.CREW, 8*1024+64)
	if _, err := pram.ListRank(lr, next); err != nil {
		return failure("E10", err)
	}
	lrm := lr.Metrics()
	okLR := float64(lrm.Steps) <= math.Log2(1024)+3
	pass = pass && okLR
	t.AddRow("list ranking (CREW)", 1024, lrm.Work, lrm.Steps,
		"T=O(log n), W=O(n log n)", verdict(okLR))

	// BFS without the queue: steps ~ diameter, not n.
	g := graphs.Grid2D(16, 16) // diameter 30
	bfs := pram.New(pram.CRCWArbitrary, 64*g.N+4*len(g.Edges)+4096)
	dist, err := pram.BFS(bfs, g.Offs, g.Edges, 0)
	if err != nil {
		return failure("E10", err)
	}
	if dist[g.N-1] != 30 {
		return failure("E10", constError("BFS distance wrong"))
	}
	bm := bfs.Metrics()
	// Per level: a constant number of machine steps plus a log-sized
	// prefix-sum sweep over the frontier.
	levels := 31.0
	okBFS := float64(bm.Steps) <= levels*(6+math.Log2(32))
	pass = pass && okBFS
	t.AddRow("BFS (CRCW + PS primitive)", g.N, bm.Work, bm.Steps,
		"T=O(diameter * log)", verdict(okBFS))

	// Simulated speedup via Brent: the parallel BFS scales; the serial
	// queue does not benefit from processors at all.
	t2 := stats.NewTable("E10b: simulated time on p processors (Brent), BFS on 16x16 grid",
		"p", "parallel T_p", "speedup", "serial queue")
	serialWork := int64(g.N + len(g.Edges)) // queue pops + edge scans
	base := bfs.TimeOnP(1)
	prevT := int64(1 << 62)
	okScale := true
	for _, p := range []int{1, 4, 16, 64} {
		tp := bfs.TimeOnP(p)
		if tp > prevT {
			okScale = false
		}
		prevT = tp
		t2.AddRow(p, tp, float64(base)/float64(tp), serialWork)
	}
	sp64 := float64(base) / float64(bfs.TimeOnP(64))
	okSpeed := sp64 > 8 // strong scaling well past the serial model
	pass = pass && okScale && okSpeed

	// Connectivity in the style of Shiloach-Vishkin.
	path := graphs.Path(256)
	us := make([]int64, 0, 255)
	vs := make([]int64, 0, 255)
	for i := 0; i+1 < 256; i++ {
		us = append(us, int64(i))
		vs = append(vs, int64(i+1))
	}
	cc := pram.New(pram.CRCWArbitrary, 16*256+4*len(us)+64)
	lbl, err := pram.Connectivity(cc, 256, us, vs)
	if err != nil {
		return failure("E10", err)
	}
	for _, l := range lbl {
		if l != 0 {
			return failure("E10", constError("connectivity wrong"))
		}
	}
	okCC := float64(cc.Metrics().Steps) <= 3*3*math.Log2(256)+9
	pass = pass && okCC
	t.AddRow("connectivity (CRCW)", 256, cc.Metrics().Work, cc.Metrics().Steps,
		"T=O(log n) hook+jump rounds", verdict(okCC))
	_ = path

	t.AddNote("%s", t2.String())
	t.AddNote("BFS speedup on 64 simulated processors: %.1fx (%s)", sp64, verdict(okSpeed))

	return Result{
		ID:    "E10",
		Claim: "work-efficient PRAM algorithms (prefix sums, list ranking, queue-free BFS, connectivity) with Brent-scaled simulated speedups",
		Table: t,
		Pass:  pass,
		Notes: []string{"the XMT platform is simulated (no FPGA): the PS primitive serializes deterministically within a step, work/time charged per the work-time framework"},
	}
}
