package search

import (
	"context"

	"repro/internal/fm"
	"repro/internal/workspan"
)

// evalBatchInlineThreshold is the batch size below which EvalBatch skips
// the pool: dispatching two or three evaluations costs more in spawn
// bookkeeping than it saves.
const evalBatchInlineThreshold = 4

// EvalBatch prices a batch of schedules of one graph on one target,
// consulting (and filling) cache, with duplicate schedules priced
// exactly once. It is the serving layer's coalescing entry point: many
// concurrent requests for the same (graph, target) collapse into one
// call, which dedups by schedule fingerprint and fans the distinct
// mappings out over pool (nil pool, or a small batch, evaluates inline).
// Results are returned in input order, so coalescing never reorders
// answers.
//
// ctx bounds the work: once done, unevaluated schedules are abandoned
// and EvalBatch returns ctx's error with a nil slice. A nil cache gets a
// private per-call cache, which still dedups within the batch.
func EvalBatch(ctx context.Context, pool *workspan.Pool, cache *EvalCache, g *fm.Graph, gfp uint64, scheds []fm.Schedule, tgt fm.Target) ([]fm.Cost, error) {
	if len(scheds) == 0 {
		return nil, nil
	}
	if cache == nil {
		cache = NewEvalCache()
	}

	// Dedup by schedule fingerprint, preserving first-appearance order so
	// the evaluation set is a deterministic function of the input.
	type uniq struct {
		sched fm.Schedule
	}
	slot := make([]int, len(scheds))
	index := make(map[uint64]int, len(scheds))
	var uniqs []uniq
	for i, s := range scheds {
		fp := s.Fingerprint()
		j, ok := index[fp]
		if !ok {
			j = len(uniqs)
			index[fp] = j
			uniqs = append(uniqs, uniq{sched: s})
		}
		slot[i] = j
	}

	costs := make([]fm.Cost, len(uniqs))
	eval := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			costs[i] = cache.Eval(g, gfp, uniqs[i].sched, tgt)
		}
	}
	if pool == nil || len(uniqs) < evalBatchInlineThreshold {
		for i := range uniqs {
			if ctx != nil {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				default:
				}
			}
			eval(i, i+1)
		}
	} else {
		if err := pool.ForWith(workspan.RunOptions{Context: ctx}, 0, len(uniqs), 1, eval); err != nil {
			return nil, err
		}
	}

	out := make([]fm.Cost, len(scheds))
	for i, j := range slot {
		out[i] = costs[j]
	}
	return out, nil
}
