package repro

import (
	"strings"
	"testing"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/idioms"
	"repro/internal/tech"
)

// idiomMap and idiomScan adapt the idioms constructors to the bench
// fixtures' layout-function signature.
func idiomMap(tgt fm.Target, n int, lay func(int) geom.Point) *fm.Module {
	return idioms.Map(tgt, n, tech.OpAdd, 32, idioms.Layout(lay))
}

func idiomScan(tgt fm.Target, n int, lay func(int) geom.Point) *fm.Module {
	return idioms.ScanKoggeStone(tgt, n, tech.OpAdd, 32, idioms.Layout(lay))
}

// TestFacadeQuickstart exercises the public facade the way the README's
// quickstart does: build a function, map it two ways, compare costs.
func TestFacadeQuickstart(t *testing.T) {
	b := NewBuilder("quickstart")
	x := b.Input(32)
	y := b.Input(32)
	sum := b.Op(tech.OpAdd, 32, x, y)
	b.MarkOutput(sum)
	g := b.Build()

	tgt := DefaultTarget(4, 4)
	serial := SerialSchedule(g, tgt, Pt(0, 0))
	if err := Check(g, serial, tgt); err != nil {
		t.Fatal(err)
	}
	c, err := Evaluate(g, serial, tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops != 1 || c.WireEnergy != 0 {
		t.Errorf("quickstart cost = %v", c)
	}
	def := ListSchedule(g, tgt)
	if err := Check(g, def, tgt); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeMachine drives the re-exported machine simulator.
func TestFacadeMachine(t *testing.T) {
	m := NewMachine(MachineConfig{Grid: geom.NewGrid(4, 4, 1.0), Tech: N5()})
	m.Compute(Pt(0, 0), tech.OpAdd, 32, "x")
	if m.Metrics().Ops != 1 {
		t.Error("machine facade broken")
	}
}

// TestFacadePool drives the re-exported work-span runtime.
func TestFacadePool(t *testing.T) {
	pool := NewPool(2, WorkStealing)
	defer pool.Close()
	ran := false
	pool.Run(func(c *Ctx) { ran = true })
	if !ran {
		t.Error("pool facade broken")
	}
	if CentralQueue == WorkStealing {
		t.Error("modes must differ")
	}
}

// TestFacadeExperiments lists the reproduction suite.
func TestFacadeExperiments(t *testing.T) {
	es := Experiments()
	if len(es) != 20 {
		t.Fatalf("%d experiments", len(es))
	}
	r := es[0].Run()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Errorf("E1 failed:\n%s", sb.String())
	}
}
