// Package cluster is the sharded serving tier: a stateless HTTP
// coordinator (cmd/maprouter) that partitions mapd work across N shard
// processes by content — fm.Fingerprint(graph, target) — so each
// shard's EvalCache and mapping atlas serve a stable key range and stay
// hot, the way a single process's cache stays hot only if the request
// stream it sees is the request stream it warmed on.
//
// Three mechanisms, each deliberately boring:
//
//   - routing: a rendezvous-hash ring (ring.go) maps every key to an
//     ordered replica set of R shards; the first healthy replica gets
//     the request;
//   - failover + hedging (forward.go): a dead or 5xx-ing replica is
//     retried on the next one (never a client-visible error while any
//     replica lives), and a slow one is hedged after a quantile-derived
//     delay on the Clock seam — the replica answers, the loser's
//     request context is cancelled;
//   - scatter-gather search (exchange.go): /v1/search fans annealing
//     slices across the replica set and the router arbitrates exchange
//     barriers between rounds, generalizing the in-process multi-chain
//     exchange across processes with a deterministic winner rule.
//
// The router holds no durable state and no request affinity: everything
// it knows (ring scores, health marks, latency window) is reconstructed
// from config and live traffic, so N routers could run behind one VIP
// and crash-restarting the router is always safe.
package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/serve"
)

// Config assembles a Router.
type Config struct {
	// Shards are the shard base URLs ("http://host:port"), index order
	// fixed for the router's lifetime — the ring hashes indices, so the
	// order IS the cluster identity and must match across restarts.
	Shards []string
	// Replicas is the ownership factor R: each key's replica set size
	// (primary + R-1 failover/hedge targets). Default 2, clamped to the
	// shard count.
	Replicas int
	// HedgeDelay, when positive, is a fixed hedge trigger. Zero derives
	// the delay from the observed forward-latency quantile (HedgeQuantile,
	// floored at HedgeMin). Negative disables hedging.
	HedgeDelay time.Duration
	// HedgeQuantile is the latency percentile (0..100) a request must
	// outlive before its hedge fires. Default 99.
	HedgeQuantile float64
	// HedgeMin floors the derived delay so a burst of cache-hit-fast
	// responses cannot drive the hedge into firing on every request.
	// Default 2ms.
	HedgeMin time.Duration
	// ExchangeRounds is the number of scatter-gather barrier rounds a
	// /v1/search anneal runs. Default 3, clamped to 1..64 (the shard
	// protocol bound).
	ExchangeRounds int
	// ProbeTimeout bounds one health probe. Default 2s.
	ProbeTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// Clock is the time seam; nil means SystemClock.
	Clock Clock
	// Client issues shard requests; nil means a default client. The
	// router never sets client-level timeouts — per-attempt lifetimes are
	// request-context children, so cancelling a loser is surgical.
	Client *http.Client
	// Obs receives cluster.* metrics; nil disables (nil-safe registry).
	Obs *obs.Registry
	// Tracer records router request traces; nil disables.
	Tracer *tracing.Tracer
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Shards) {
		c.Replicas = len(c.Shards)
	}
	if c.HedgeQuantile == 0 {
		c.HedgeQuantile = 99
	}
	if c.HedgeMin == 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.ExchangeRounds <= 0 {
		c.ExchangeRounds = 3
	}
	if c.ExchangeRounds > 64 {
		c.ExchangeRounds = 64
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Clock == nil {
		c.Clock = SystemClock{}
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Router is the cluster coordinator. Create with NewRouter, mount
// Handler on an http.Server; Drain flips new requests to 503.
type Router struct {
	cfg    Config
	clock  Clock
	reg    *obs.Registry
	tracer *tracing.Tracer
	client *http.Client

	ring   *Ring
	health *healthState
	lat    *latencyWindow

	draining atomic.Bool
	mux      *http.ServeMux

	// Instruments, resolved once; all nil-safe.
	mEvalRequests, mSearchRequests, mSlackRequests *obs.Counter
	mHedgesFired, mHedgesWon, mFailovers           *obs.Counter
	mExchangeRounds, mNoReplica, mRefused          *obs.Counter
	mRoutes                                        []*obs.Counter
	mForwardLatency                                *obs.Timer
}

// NewRouter builds a Router over the configured shards.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	rt := &Router{
		cfg:    cfg,
		clock:  cfg.Clock,
		reg:    cfg.Obs,
		tracer: cfg.Tracer,
		client: cfg.Client,
		ring:   NewRing(len(cfg.Shards)),
		health: newHealthState(len(cfg.Shards)),
		lat:    newLatencyWindow(),
	}
	rt.instrument()
	rt.routes()
	return rt, nil
}

func (rt *Router) instrument() {
	r := rt.reg
	rt.mEvalRequests = r.Counter("cluster.eval.requests")
	rt.mSearchRequests = r.Counter("cluster.search.requests")
	rt.mSlackRequests = r.Counter("cluster.slack.requests")
	rt.mHedgesFired = r.Counter("cluster.hedges.fired")
	rt.mHedgesWon = r.Counter("cluster.hedges.won")
	rt.mFailovers = r.Counter("cluster.failovers")
	rt.mExchangeRounds = r.Counter("cluster.exchange.rounds")
	rt.mNoReplica = r.Counter("cluster.no_replica")
	rt.mRefused = r.Counter("cluster.refused")
	rt.mRoutes = make([]*obs.Counter, len(rt.cfg.Shards))
	for i := range rt.mRoutes {
		rt.mRoutes[i] = r.Counter(fmt.Sprintf("cluster.routes.shard%d", i))
	}
	rt.mForwardLatency = r.Timer("cluster.forward.latency_seconds")
}

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /v1/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /debug/traces", rt.handleTraces)
	rt.mux.HandleFunc("POST /v1/probe", rt.handleProbe)
	rt.mux.HandleFunc("POST /v1/eval", rt.handleForward("/v1/eval", func() { rt.mEvalRequests.Inc() }))
	rt.mux.HandleFunc("/v1/slack", rt.handleForward("/v1/slack", func() { rt.mSlackRequests.Inc() }))
	rt.mux.HandleFunc("POST /v1/search", rt.handleSearch)
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Shards returns the configured shard addresses in ring order.
func (rt *Router) Shards() []string { return rt.cfg.Shards }

// Drain flips the router into refusing new work with 503; in-flight
// forwards finish under the http.Server's shutdown grace.
func (rt *Router) Drain() { rt.draining.Store(true) }

// Draining reports whether Drain has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// plan computes the routing plan for key: the ring's replica set split
// into the try-order (healthy replicas first, in rank order, then
// down-marked ones as a last resort — a marked-down shard may have
// recovered, and trying it beats refusing the request) plus the true
// primary for failover accounting.
func (rt *Router) plan(key uint64) (cands []int, primary int) {
	owners := rt.ring.Owners(key, rt.cfg.Replicas)
	primary = owners[0]
	cands = make([]int, 0, len(owners))
	for _, s := range owners {
		if rt.health.healthy(s) {
			cands = append(cands, s)
		}
	}
	for _, s := range owners {
		if !rt.health.healthy(s) {
			cands = append(cands, s)
		}
	}
	return cands, primary
}

// readBody slurps a bounded request body.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\": %q}\n", fmt.Sprintf(format, args...))
}

// seal finishes the trace before the body is written, matching the
// serving layer's ordering contract: a sequential driver observes
// completed traces in exact request order.
func seal(tr *tracing.Request, outcome string) {
	if outcome != "" {
		tr.SetOutcome(outcome)
	}
	tr.Stage("respond")
	tr.Finish()
}

// handleForward serves the single-shard endpoints (/v1/eval, /v1/slack):
// route by content, forward with failover and hedging, pass the winning
// shard's answer through verbatim plus X-Cluster-* attribution headers.
func (rt *Router) handleForward(path string, count func()) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		count()
		rctx, tr := rt.tracer.StartRequest(r.Context(), "cluster"+path, "decode")
		defer tr.Finish()
		if rt.Draining() {
			rt.mRefused.Inc()
			seal(tr, "rejected")
			writeJSONError(w, http.StatusServiceUnavailable, "router is draining")
			return
		}
		body, err := rt.readBody(w, r)
		if err != nil {
			seal(tr, "error")
			writeJSONError(w, http.StatusBadRequest, "read request: %v", err)
			return
		}
		tr.Stage("route")
		key, err := serve.RouteKey(body)
		if err != nil {
			seal(tr, "error")
			writeJSONError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		cands, primary := rt.plan(key)
		tr.Annotate("route.key", strconv.FormatUint(key, 16))
		tr.Annotate("route.primary", strconv.Itoa(primary))
		tr.Stage("forward")
		res, ok := rt.forward(rctx, path, body, forwardOptions{
			cands:    cands,
			traceID:  tr.TraceID(),
			hedge:    true,
			deadline: r.Header.Get("X-Deadline-Ms"),
		})
		if !ok {
			rt.mNoReplica.Inc()
			tr.Annotate("route.exhausted", strconv.Itoa(len(cands)))
			seal(tr, "error")
			writeJSONError(w, http.StatusBadGateway, "no replica could serve the request (%d tried)", len(cands))
			return
		}
		rt.accountServed(tr, res, primary)
		copyShardResponse(w, res, primary)
	}
}

// accountServed updates attribution metrics for a winning forward.
func (rt *Router) accountServed(tr *tracing.Request, res attemptResult, primary int) {
	rt.mRoutes[res.shard].Inc()
	tr.Annotate("served_by", strconv.Itoa(res.shard))
	if res.hedged {
		rt.mHedgesWon.Inc()
		tr.Annotate("hedge.won", "true")
	} else if res.shard != primary {
		// Served by a replica for a liveness reason (primary failed or
		// was down-marked), not because a hedge raced it.
		rt.mFailovers.Inc()
		tr.Annotate("failover", "true")
	}
	seal(tr, "")
}

// copyShardResponse relays the shard's answer: status, the headers that
// matter (content type, backpressure), body verbatim, plus attribution.
func copyShardResponse(w http.ResponseWriter, res attemptResult, primary int) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Cluster-Shard", strconv.Itoa(res.shard))
	w.Header().Set("X-Cluster-Primary", strconv.Itoa(primary))
	if res.hedged {
		w.Header().Set("X-Cluster-Hedged", "true")
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// routerHealthz is the router's own health document: its lifecycle state
// plus the per-shard routability view the prober maintains.
type routerHealthz struct {
	Status   string        `json:"status"`
	State    string        `json:"state"`
	Replicas int           `json:"replicas"`
	Shards   []shardStatus `json:"shards"`
}

type shardStatus struct {
	Index  int    `json:"index"`
	Addr   string `json:"addr"`
	Up     bool   `json:"up"`
	Reason string `json:"reason,omitempty"`
}

func (rt *Router) healthzBody() routerHealthz {
	up, reason := rt.health.snapshot()
	resp := routerHealthz{
		Status:   "ok",
		State:    "ready",
		Replicas: rt.cfg.Replicas,
		Shards:   make([]shardStatus, len(rt.cfg.Shards)),
	}
	if rt.Draining() {
		resp.Status = "draining"
		resp.State = "draining"
	}
	for i, addr := range rt.cfg.Shards {
		resp.Shards[i] = shardStatus{Index: i, Addr: addr, Up: up[i], Reason: reason[i]}
	}
	return resp
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	if rt.Draining() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rt.healthzBody())
}

// handleProbe forces an immediate health probe of every shard — the
// deterministic drills' alternative to waiting out a probe interval —
// and returns the refreshed health document.
func (rt *Router) handleProbe(w http.ResponseWriter, r *http.Request) {
	rt.ProbeOnce(r.Context())
	writeJSON(w, http.StatusOK, rt.healthzBody())
}

// handleTraces serves the router's flight recorder, like the shard
// endpoint: JSON by default, Chrome rendering with ?format=chrome.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = rt.tracer.WriteChrome(w)
		return
	}
	rt.tracer.Handler().ServeHTTP(w, r)
}
