package fm

import (
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// mapStage builds a 4-element elementwise module whose element i sits at
// place(i). Inputs available at time 0, ops issue immediately.
func mapStage(t *testing.T, name string, place func(i int) geom.Point) *Module {
	t.Helper()
	b := NewBuilder(name)
	ins := make([]NodeID, 4)
	outs := make([]NodeID, 4)
	for i := range ins {
		ins[i] = b.Input(32)
	}
	for i := range outs {
		outs[i] = b.Op(tech.OpAdd, 32, ins[i])
		b.MarkOutput(outs[i])
	}
	g := b.Build()
	sched := make(Schedule, g.NumNodes())
	for i := range ins {
		sched[ins[i]] = Assignment{Place: place(i), Time: 0}
		sched[outs[i]] = Assignment{Place: place(i), Time: 0}
	}
	m, err := NewModule(name, g, sched, []Port{{Name: "in", Nodes: ins}}, []Port{{Name: "out", Nodes: outs}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func rowPlace(i int) geom.Point      { return geom.Pt(i, 0) }
func reversedPlace(i int) geom.Point { return geom.Pt(3-i, 0) }

func TestNewModuleValidation(t *testing.T) {
	b := NewBuilder("m")
	in := b.Input(32)
	op := b.Op(tech.OpAdd, 32, in)
	g := b.Build()
	sched := Schedule{{Place: geom.Pt(0, 0)}, {Place: geom.Pt(0, 0)}}

	// Input not covered by any port.
	if _, err := NewModule("m", g, sched, nil, nil); err == nil {
		t.Error("want error for uncovered input")
	}
	// Non-input in input port.
	if _, err := NewModule("m", g, sched, []Port{{Nodes: []NodeID{op}}}, nil); err == nil {
		t.Error("want error for non-input in port")
	}
	// Duplicate coverage.
	if _, err := NewModule("m", g, sched, []Port{{Nodes: []NodeID{in, in}}}, nil); err == nil {
		t.Error("want error for duplicate input")
	}
	// Bad output reference.
	if _, err := NewModule("m", g, sched, []Port{{Nodes: []NodeID{in}}}, []Port{{Nodes: []NodeID{99}}}); err == nil {
		t.Error("want error for bad output node")
	}
	// Short schedule.
	if _, err := NewModule("m", g, Schedule{}, []Port{{Nodes: []NodeID{in}}}, nil); err == nil {
		t.Error("want error for short schedule")
	}
	// Valid.
	if _, err := NewModule("m", g, sched, []Port{{Nodes: []NodeID{in}}}, []Port{{Nodes: []NodeID{op}}}); err != nil {
		t.Errorf("valid module rejected: %v", err)
	}
}

func TestCheckAligned(t *testing.T) {
	a := mapStage(t, "a", rowPlace)
	b := mapStage(t, "b", rowPlace)
	if err := CheckAligned(a, b); err != nil {
		t.Fatalf("identical placements should align: %v", err)
	}
	c := mapStage(t, "c", reversedPlace)
	err := CheckAligned(a, c)
	var ae *AlignmentError
	if !errors.As(err, &ae) {
		t.Fatalf("want AlignmentError, got %v", err)
	}
	if ae.Index != 0 || ae.ProducerPlace != geom.Pt(0, 0) || ae.ConsumerPlace != geom.Pt(3, 0) {
		t.Errorf("detail = %+v", ae)
	}
	if ae.Error() == "" {
		t.Error("empty error message")
	}
}

func TestComposeAligned(t *testing.T) {
	tgt := DefaultTarget(4, 1)
	a := mapStage(t, "a", rowPlace)
	b := mapStage(t, "b", rowPlace)
	m, err := ComposeAligned("a;b", a, b, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(m.Graph, m.Sched, tgt); err != nil {
		t.Fatalf("composed schedule illegal: %v", err)
	}
	c, err := Evaluate(m.Graph, m.Sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.WireEnergy != 0 {
		t.Errorf("aligned composition should move nothing, wire = %g", c.WireEnergy)
	}
	if c.Ops != 8 {
		t.Errorf("Ops = %d, want 8", c.Ops)
	}
	if got := len(boundary(m.In)); got != 4 {
		t.Errorf("composed inputs = %d", got)
	}
	if got := len(boundary(m.Out)); got != 4 {
		t.Errorf("composed outputs = %d", got)
	}
}

func TestComposeAlignedRejectsMisaligned(t *testing.T) {
	tgt := DefaultTarget(4, 1)
	a := mapStage(t, "a", rowPlace)
	c := mapStage(t, "c", reversedPlace)
	var ae *AlignmentError
	if _, err := ComposeAligned("a;c", a, c, tgt); !errors.As(err, &ae) {
		t.Fatalf("want AlignmentError, got %v", err)
	}
}

func TestComposeWithRemap(t *testing.T) {
	tgt := DefaultTarget(4, 1)
	a := mapStage(t, "a", rowPlace)
	c := mapStage(t, "c", reversedPlace)
	m, st, err := ComposeWithRemap("a>shuffle>c", a, c, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(m.Graph, m.Sched, tgt); err != nil {
		t.Fatalf("remapped composition illegal: %v", err)
	}
	if st.Moves != 4 || st.CopyOps != 4 {
		t.Errorf("stats = %+v", st)
	}
	// Element 0 moves 3 hops, 1 moves 1, 2 moves 1, 3 moves 3: 8 hops x 32 bits.
	if st.BitHops != 8*32 {
		t.Errorf("BitHops = %d, want 256", st.BitHops)
	}
	cost, err := Evaluate(m.Graph, m.Sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cost.WireEnergy <= 0 {
		t.Error("shuffle must pay wire energy")
	}
	if cost.Ops != 8+4 { // two stages + four copies
		t.Errorf("Ops = %d, want 12", cost.Ops)
	}
}

func TestComposeRemapCostExceedsAligned(t *testing.T) {
	// The paper: composing misaligned modules inserts a shuffle whose
	// cost the aligned composition avoids.
	tgt := DefaultTarget(4, 1)
	a1 := mapStage(t, "a1", rowPlace)
	b1 := mapStage(t, "b1", rowPlace)
	aligned, err := ComposeAligned("al", a1, b1, tgt)
	if err != nil {
		t.Fatal(err)
	}
	a2 := mapStage(t, "a2", rowPlace)
	c2 := mapStage(t, "c2", reversedPlace)
	remapped, _, err := ComposeWithRemap("rm", a2, c2, tgt)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := Evaluate(aligned.Graph, aligned.Sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Evaluate(remapped.Graph, remapped.Sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cr.EnergyFJ <= ca.EnergyFJ {
		t.Errorf("remap (%g fJ) should cost more than aligned (%g fJ)", cr.EnergyFJ, ca.EnergyFJ)
	}
	if cr.Cycles <= ca.Cycles {
		t.Errorf("remap (%d cycles) should be slower than aligned (%d)", cr.Cycles, ca.Cycles)
	}
}

func TestComposeWithRemapAlignedIsNoop(t *testing.T) {
	tgt := DefaultTarget(4, 1)
	a := mapStage(t, "a", rowPlace)
	b := mapStage(t, "b", rowPlace)
	m, st, err := ComposeWithRemap("ab", a, b, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves != 0 || st.BitHops != 0 || st.CopyOps != 0 {
		t.Errorf("aligned remap stats = %+v", st)
	}
	if m.Graph.CountOps() != 8 {
		t.Errorf("no copies expected, ops = %d", m.Graph.CountOps())
	}
}

func TestComposeArityMismatch(t *testing.T) {
	tgt := DefaultTarget(4, 1)
	a := mapStage(t, "a", rowPlace)
	// A consumer with 2 inputs only.
	bld := NewBuilder("narrow")
	i1, i2 := bld.Input(32), bld.Input(32)
	o := bld.Op(tech.OpAdd, 32, i1, i2)
	bld.MarkOutput(o)
	g := bld.Build()
	sched := Schedule{
		{Place: geom.Pt(0, 0)}, {Place: geom.Pt(1, 0)}, {Place: geom.Pt(0, 0), Time: 100},
	}
	narrow, err := NewModule("narrow", g, sched, []Port{{Nodes: []NodeID{i1, i2}}}, []Port{{Nodes: []NodeID{o}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComposeAligned("x", a, narrow, tgt); err == nil {
		t.Error("want arity error")
	}
	if _, _, err := ComposeWithRemap("x", a, narrow, tgt); err == nil {
		t.Error("want arity error")
	}
}

func TestComposeChainsThreeModules(t *testing.T) {
	tgt := DefaultTarget(4, 1)
	m1 := mapStage(t, "s1", rowPlace)
	m2 := mapStage(t, "s2", rowPlace)
	m3 := mapStage(t, "s3", reversedPlace)
	m12, err := ComposeAligned("s1;s2", m1, m2, tgt)
	if err != nil {
		t.Fatal(err)
	}
	full, st, err := ComposeWithRemap("s1;s2>s3", m12, m3, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves != 4 {
		t.Errorf("moves = %d", st.Moves)
	}
	if err := Check(full.Graph, full.Sched, tgt); err != nil {
		t.Fatalf("three-stage composition illegal: %v", err)
	}
	if full.Graph.CountOps() != 12+4 {
		t.Errorf("ops = %d, want 16", full.Graph.CountOps())
	}
}
