package experiments

import (
	"repro/internal/algorithms/fft"
	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/stats"
)

// E4 reproduces "for a given problem there may be several functions that
// compute the result (e.g., decimation in time vs decimation in space
// FFT, or different radix FFT). For each function there are many possible
// mappings ... the one that is [more communication-] efficient is
// preferred" — the function axis as radix-2 vs radix-4 multiply counts,
// the mapping axis as serial / blocked / scattered placements of the
// butterfly network with explicit wire costs.
func E4() Result {
	const n = 256
	const p = 8

	// Function axis: multiplies per transform.
	r2, r4 := fft.MulCount(n, 2), fft.MulCount(n, 4)
	mulRatio := float64(r4) / float64(r2)

	// Mapping axis: the same radix-2 function under three placements.
	bf := fft.BuildButterfly(n)
	tgt := fm.DefaultTarget(p, 1)
	tgt.MemWordsPerNode = 1 << 22

	serial, err := bf.MappingCost(bf.SerialPlacement(tgt.Grid), tgt)
	if err != nil {
		return failure("E4", err)
	}
	blockedPlace := bf.BlockedPlacement(p, tgt.Grid)
	blocked, err := bf.MappingCost(blockedPlace, tgt)
	if err != nil {
		return failure("E4", err)
	}
	scatteredPlace := make([]geom.Point, len(blockedPlace))
	for nd := 0; nd < bf.Graph.NumNodes(); nd++ {
		scatteredPlace[nd] = geom.Pt((bf.Index[fm.NodeID(nd)]*5+3)%p, 0)
	}
	scattered, err := bf.MappingCost(scatteredPlace, tgt)
	if err != nil {
		return failure("E4", err)
	}

	t := stats.NewTable("E4: FFT functions x mappings (n=256, P=8)",
		"variant", "cycles", "wire fJ", "bit-hops", "note")
	t.AddRow("radix-2 serial map", serial.Cycles, serial.WireEnergy, serial.BitHops, "zero movement")
	t.AddRow("radix-2 blocked map", blocked.Cycles, blocked.WireEnergy, blocked.BitHops, "locality-aware")
	t.AddRow("radix-2 scattered map", scattered.Cycles, scattered.WireEnergy, scattered.BitHops, "locality-blind")
	t.AddRow("radix-4 vs radix-2 multiplies", int64(r4), 0.0, int64(r2), "function choice")

	okMul := mulRatio > 0.4 && mulRatio < 0.95
	okSerialWire := serial.WireEnergy == 0
	okParallel := blocked.Cycles < serial.Cycles
	okLocality := blocked.WireEnergy < scattered.WireEnergy &&
		blocked.BitHops < scattered.BitHops
	okSameWork := blocked.ComputeEnergy == scattered.ComputeEnergy
	t.AddNote("radix-4/radix-2 multiply ratio = %.2f (asymptotically 0.75)", mulRatio)
	t.AddNote("blocked wire / scattered wire = %.2f", blocked.WireEnergy/scattered.WireEnergy)

	return Result{
		ID:    "E4",
		Claim: "same O(N log N) function, different constant factors: radix choice cuts multiplies; mapping choice cuts communication",
		Table: t,
		Pass:  okMul && okSerialWire && okParallel && okLocality && okSameWork,
		Notes: []string{
			"all four numeric FFT functions are verified against the O(n^2) DFT; the butterfly dataflow graph is verified to compute the DFT before being priced",
		},
	}
}
