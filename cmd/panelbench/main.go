// Command panelbench runs the full paper-reproduction suite: one
// experiment per quantitative claim in the SPAA'21 panel paper, each
// printing a paper-vs-measured table and a PASS/FAIL verdict. Exit status
// is nonzero if any experiment fails.
//
// With -json the suite additionally writes a machine-readable report
// (schema "panelbench/v1": every experiment's tables, notes, and
// verdicts) to the given path, or to stdout with "-" — the format CI
// archives and cmd/benchcheck validates. -cpuprofile and -memprofile
// write runtime/pprof profiles of the run.
//
// Usage:
//
//	panelbench            # run everything
//	panelbench -only E3   # run one experiment
//	panelbench -list      # list experiments
//	panelbench -json BENCH_panel.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/prof"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E3)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "write a panelbench/v1 JSON report to this path ('-' for stdout; requires a full run, incompatible with -only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path at exit")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	if *jsonOut != "" && *only != "" {
		fmt.Fprintln(os.Stderr, "panelbench: -json reports the full suite; drop -only")
		os.Exit(2)
	}

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "panelbench: %v\n", err)
		os.Exit(2)
	}
	defer stopCPU()

	failed := 0
	ran := 0
	report := experiments.Report{Schema: experiments.ReportSchema}
	for _, e := range all {
		if *only != "" && e.ID != *only {
			continue
		}
		ran++
		r := e.Run()
		if _, err := r.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "panelbench: %v\n", err)
			os.Exit(2)
		}
		report.Experiments = append(report.Experiments, experiments.EntryFor(r, e.Name))
		if r.Pass {
			report.Passed++
		} else {
			report.Failed++
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "panelbench: no experiment matches %q (try -list)\n", *only)
		os.Exit(2)
	}
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "panelbench: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			out = f
		}
		if err := report.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "panelbench: refusing to write a malformed report: %v\n", err)
			os.Exit(2)
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "panelbench: %v\n", err)
			os.Exit(2)
		}
		if *jsonOut != "-" {
			fmt.Printf("\nJSON report written to %s\n", *jsonOut)
		}
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "panelbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("\n%d/%d experiments passed\n", ran-failed, ran)
	if failed > 0 {
		os.Exit(1)
	}
}
