package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ReportSchema identifies the JSON layout of a bench report. Bump the
// suffix on any incompatible change; CI's schema check pins it.
const ReportSchema = "panelbench/v1"

// TableJSON is a stats.Table flattened for machine consumption: the
// formatted cell strings, exactly as the text report prints them, so the
// committed BENCH_*.json diffs cleanly against the rendered tables.
type TableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// ReportEntry is one experiment's outcome in a Report.
type ReportEntry struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"`
	Claim   string    `json:"claim"`
	Pass    bool      `json:"pass"`
	Table   TableJSON `json:"table"`
	Notes   []string  `json:"notes,omitempty"`
	Metrics []Metric  `json:"metrics,omitempty"`
}

// Report is the machine-readable form of a full panelbench run —
// `panelbench -json` emits one, and CI archives it as an artifact.
type Report struct {
	Schema      string        `json:"schema"`
	Experiments []ReportEntry `json:"experiments"`
	Passed      int           `json:"passed"`
	Failed      int           `json:"failed"`
}

// EntryFor flattens one experiment result into its report form; name is
// the registry name. BuildReport and cmd/panelbench share it so the two
// report producers cannot drift.
func EntryFor(r Result, name string) ReportEntry {
	entry := ReportEntry{
		ID: r.ID, Name: name, Claim: r.Claim, Pass: r.Pass, Notes: r.Notes, Metrics: r.Metrics,
	}
	if r.Table != nil {
		entry.Table = TableJSON{
			Title:   r.Table.Title(),
			Headers: r.Table.Headers(),
			Rows:    r.Table.RowStrings(),
			Notes:   r.Table.Notes(),
		}
	}
	return entry
}

// BuildReport runs every registered experiment and collects the results.
func BuildReport() Report {
	rep := Report{Schema: ReportSchema}
	for _, e := range All() {
		r := e.Run()
		rep.Experiments = append(rep.Experiments, EntryFor(r, e.Name))
		if r.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
	}
	return rep
}

// Validate is the sanity check CI runs against an emitted report: right
// schema, one well-formed entry for every registered experiment, and
// consistent pass/fail totals. It does NOT require every experiment to
// pass — a failing reproduction is a result, not a broken report.
func (r Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("experiments: schema %q, want %q", r.Schema, ReportSchema)
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("experiments: report is empty")
	}
	seen := make(map[string]bool, len(r.Experiments))
	passed, failed := 0, 0
	for _, e := range r.Experiments {
		if e.ID == "" {
			return fmt.Errorf("experiments: entry with empty ID (name %q)", e.Name)
		}
		if seen[e.ID] {
			return fmt.Errorf("experiments: duplicate entry %s", e.ID)
		}
		seen[e.ID] = true
		if len(e.Table.Headers) == 0 || len(e.Table.Rows) == 0 {
			return fmt.Errorf("experiments: %s has an empty table", e.ID)
		}
		for i, row := range e.Table.Rows {
			if len(row) != len(e.Table.Headers) {
				return fmt.Errorf("experiments: %s row %d has %d cells for %d columns",
					e.ID, i, len(row), len(e.Table.Headers))
			}
		}
		if e.Pass {
			passed++
		} else {
			failed++
		}
		names := make(map[string]bool, len(e.Metrics))
		for _, m := range e.Metrics {
			if m.Name == "" {
				return fmt.Errorf("experiments: %s has a metric with no name", e.ID)
			}
			if names[m.Name] {
				return fmt.Errorf("experiments: %s has duplicate metric %q", e.ID, m.Name)
			}
			names[m.Name] = true
			if m.Better != "higher" && m.Better != "lower" {
				return fmt.Errorf("experiments: %s metric %q has direction %q, want higher or lower",
					e.ID, m.Name, m.Better)
			}
			if m.RelTol < 0 {
				return fmt.Errorf("experiments: %s metric %q has negative tolerance %g", e.ID, m.Name, m.RelTol)
			}
			if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
				return fmt.Errorf("experiments: %s metric %q has non-finite value", e.ID, m.Name)
			}
		}
	}
	for _, e := range All() {
		if !seen[e.ID] {
			return fmt.Errorf("experiments: report is missing %s (%s)", e.ID, e.Name)
		}
	}
	if passed != r.Passed || failed != r.Failed {
		return fmt.Errorf("experiments: totals say %d/%d pass/fail, entries say %d/%d",
			r.Passed, r.Failed, passed, failed)
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MetricComparison is one metric's baseline-versus-current outcome.
type MetricComparison struct {
	Experiment string
	Metric     Metric  // the current run's definition (direction, tolerance)
	Baseline   float64 // value in the baseline report
	Current    float64 // value in the current report
	Regressed  bool
}

// CompareToBaseline checks the current report's metrics against a
// committed baseline: every metric present in both reports for the same
// experiment is compared, and gating metrics (RelTol > 0 in the current
// run, whose code defines the contract) regress when they move in the
// worse direction by more than the tolerance. Metrics only one side has
// are skipped — new experiments and renamed metrics update the baseline,
// they do not fail it — and improvements of any size never regress, so
// the gate is a one-sided tolerance band, a trajectory check rather
// than a reproducibility check. Returns every shared metric's outcome
// for reporting; the caller fails on any Regressed entry.
func (r Report) CompareToBaseline(baseline Report) []MetricComparison {
	base := make(map[string]map[string]Metric)
	for _, e := range baseline.Experiments {
		if len(e.Metrics) == 0 {
			continue
		}
		m := make(map[string]Metric, len(e.Metrics))
		for _, mt := range e.Metrics {
			m[mt.Name] = mt
		}
		base[e.ID] = m
	}
	var out []MetricComparison
	for _, e := range r.Experiments {
		for _, mt := range e.Metrics {
			old, ok := base[e.ID][mt.Name]
			if !ok {
				continue
			}
			out = append(out, MetricComparison{
				Experiment: e.ID,
				Metric:     mt,
				Baseline:   old.Value,
				Current:    mt.Value,
				Regressed:  mt.Regressed(old.Value, mt.Value),
			})
		}
	}
	return out
}

// ReadReport parses a report previously written with WriteJSON. It does
// not validate; callers chain Validate explicitly.
func ReadReport(rd io.Reader) (Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("experiments: parse report: %w", err)
	}
	return r, nil
}
