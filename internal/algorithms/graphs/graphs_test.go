package graphs

import (
	"math/rand"
	"testing"

	"repro/internal/workspan"
)

func TestFromEdgesCSR(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 2}}) // self-loop dropped
	if g.N != 4 || g.NumEdges() != 2 {
		t.Errorf("N=%d edges=%d", g.N, g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 || g.Degree(2) != 1 {
		t.Errorf("degrees = %d %d %d", g.Degree(1), g.Degree(3), g.Degree(2))
	}
	ns := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Errorf("neighbors(1) = %v", ns)
	}
	assertPanics(t, "edge range", func() { FromEdges(2, [][2]int{{0, 2}}) })
	assertPanics(t, "negative n", func() { FromEdges(-1, nil) })
}

func TestGenerators(t *testing.T) {
	if g := Path(5); g.NumEdges() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Error("Path wrong")
	}
	if g := Star(6); g.Degree(0) != 5 || g.Degree(3) != 1 {
		t.Error("Star wrong")
	}
	g := Grid2D(3, 4)
	if g.N != 12 || g.NumEdges() != 3*3+2*4 {
		t.Errorf("Grid2D: N=%d edges=%d", g.N, g.NumEdges())
	}
	// Corner degree 2, edge degree 3, interior degree 4.
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(4) != 4 {
		t.Error("Grid2D degrees wrong")
	}
	r := RandomGnm(50, 120, 7)
	if r.N != 50 || r.NumEdges() != 120 {
		t.Errorf("RandomGnm: N=%d edges=%d", r.N, r.NumEdges())
	}
	// Determinism.
	r2 := RandomGnm(50, 120, 7)
	for i := range r.Edges {
		if r.Edges[i] != r2.Edges[i] {
			t.Fatal("RandomGnm not deterministic")
		}
	}
}

func TestBFSSerialKnown(t *testing.T) {
	g := Path(5)
	d := BFSSerial(g, 2)
	want := []int64{2, 1, 0, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist = %v", d)
			break
		}
	}
	// Disconnected vertex.
	g2 := FromEdges(3, [][2]int{{0, 1}})
	d2 := BFSSerial(g2, 0)
	if d2[2] != -1 {
		t.Errorf("unreachable dist = %d", d2[2])
	}
	assertPanics(t, "bad src", func() { BFSSerial(g, 9) })
}

func TestBFSGridDistances(t *testing.T) {
	g := Grid2D(7, 5)
	d := BFSSerial(g, 0)
	for y := 0; y < 5; y++ {
		for x := 0; x < 7; x++ {
			if want := int64(x + y); d[y*7+x] != want {
				t.Errorf("dist(%d,%d) = %d, want %d", x, y, d[y*7+x], want)
			}
		}
	}
}

func TestBFSParallelMatchesSerial(t *testing.T) {
	pool := workspan.NewPool(4, workspan.WorkStealing)
	defer pool.Close()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(200)
		g := RandomGnm(n, 3*n, int64(trial))
		src := rng.Intn(n)
		want := BFSSerial(g, src)
		var got []int64
		pool.Run(func(c *workspan.Ctx) {
			got = BFSParallel(c, g, src, 16)
		})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: dist[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
	}
}

func TestComponentsSerial(t *testing.T) {
	g := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}, {5, 5}})
	lbl := ComponentsSerial(g)
	want := []int64{0, 0, 0, 3, 3, 5, 6}
	for i := range want {
		if lbl[i] != want[i] {
			t.Errorf("labels = %v, want %v", lbl, want)
			break
		}
	}
}

func TestComponentsParallelMatchesSerial(t *testing.T) {
	pool := workspan.NewPool(4, workspan.WorkStealing)
	defer pool.Close()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(150)
		// Sparse: many components.
		g := RandomGnm(n, n/2, int64(trial+100))
		want := ComponentsSerial(g)
		var got []int64
		pool.Run(func(c *workspan.Ctx) {
			got = ComponentsParallel(c, g, 8)
		})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: label[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
	}
}

func TestComponentsPathWorstCase(t *testing.T) {
	pool := workspan.NewPool(4, workspan.WorkStealing)
	defer pool.Close()
	g := Path(512)
	var got []int64
	pool.Run(func(c *workspan.Ctx) {
		got = ComponentsParallel(c, g, 32)
	})
	for v, l := range got {
		if l != 0 {
			t.Fatalf("label[%d] = %d on a connected path", v, l)
		}
	}
}

func TestComponentsEmptyAndSingleton(t *testing.T) {
	pool := workspan.NewPool(2, workspan.WorkStealing)
	defer pool.Close()
	empty := FromEdges(0, nil)
	pool.Run(func(c *workspan.Ctx) {
		if got := ComponentsParallel(c, empty, 4); len(got) != 0 {
			t.Errorf("empty graph labels = %v", got)
		}
	})
	if got := ComponentsSerial(FromEdges(1, nil)); got[0] != 0 {
		t.Errorf("singleton label = %v", got)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
