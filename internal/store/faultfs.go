// FaultFS: a deterministic adversarial disk. It wraps any FS and
// injects the three failure modes the store's crash model promises to
// survive — short (torn) writes, fsync errors, and silently flipped
// bytes — plus a "process death" switch that kills the FS mid-write at
// an exact operation number. Every injection decision is a pure
// function of (Seed, operation kind, operation number), the same
// interleaving-independent discipline as internal/fault: two drills
// with the same seed and the same operation sequence fault at the same
// instants and tear the same bytes, which is what makes crash-recovery
// drills byte-reproducible.
package store

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrCrashed is returned by every FaultFS operation after the injected
// crash point: the process is "dead" as far as the disk is concerned.
var ErrCrashed = errors.New("store: fault fs crashed")

// errInjected marks a non-fatal injected fault (short write or fsync
// failure); the store repairs and keeps serving.
var errInjected = errors.New("injected fault")

// IsInjected reports whether err is a non-fatal injected disk fault.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }

// Operation kinds, mixed into the injection hash so each kind draws an
// independent stream.
const (
	opWrite uint64 = iota + 1
	opSync
	opMutate // create/rename/remove/truncate/dirsync
)

// FaultConfig tunes a FaultFS. Rates are per-operation probabilities in
// [0, 1]; zero disables that fault kind.
type FaultConfig struct {
	// Seed selects the fault schedule.
	Seed int64
	// ShortWriteRate is the probability a Write persists only a
	// prefix of its buffer and then fails.
	ShortWriteRate float64
	// SyncErrRate is the probability a file or directory Sync fails
	// (leaving the unsynced tail in an unknown state, as real disks do).
	SyncErrRate float64
	// FlipRate is the probability one byte of a Write is flipped in
	// flight — the write "succeeds" but the medium lies. Recovery must
	// catch this by checksum, never by the write path.
	FlipRate float64
	// CrashAtOp, when positive, kills the FS at the CrashAtOp-th
	// mutating operation: a Write persists a deterministic prefix first,
	// any other operation does nothing; every operation thereafter
	// returns ErrCrashed. Models kill -9 mid-write.
	CrashAtOp int64
	// OnCrash, when non-nil, runs at the crash instant (after the torn
	// prefix lands). Drill binaries use it to SIGKILL themselves so the
	// "crash" is a real process death, not a simulated one.
	OnCrash func()
}

// Validate reports an error for rates outside [0, 1].
func (c FaultConfig) Validate() error {
	for _, r := range []float64{c.ShortWriteRate, c.SyncErrRate, c.FlipRate} {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("store: fault rate %g outside [0, 1]", r)
		}
	}
	return nil
}

// FaultStats counts injected faults by kind.
type FaultStats struct {
	ShortWrites int64 `json:"short_writes"`
	SyncErrs    int64 `json:"sync_errs"`
	FlippedByte int64 `json:"flipped_bytes"`
	Crashed     bool  `json:"crashed"`
}

// FaultFS wraps an inner FS with deterministic fault injection. Safe
// for concurrent use; determinism holds whenever the operation order is
// deterministic (the store serializes all writes under its own mutex).
type FaultFS struct {
	inner FS
	cfg   FaultConfig
	seed  uint64

	mu      sync.Mutex
	op      int64 // mutating-operation counter
	crashed bool
	stats   FaultStats
}

// NewFaultFS wraps inner with the configured fault schedule.
func NewFaultFS(inner FS, cfg FaultConfig) (*FaultFS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FaultFS{
		inner: inner,
		cfg:   cfg,
		seed:  mix64(uint64(cfg.Seed) ^ 0x57a7e_fa017_f5),
	}, nil
}

// Stats returns the injected-fault counts so far.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw returns a uniform float64 in [0, 1) and a raw hash for the
// given (kind, op) coordinate — the injector's entire randomness.
func (f *FaultFS) draw(kind uint64, op int64) (float64, uint64) {
	h := mix64(f.seed ^ mix64(kind*0x9e3779b97f4a7c15+uint64(op)))
	return float64(h>>11) / float64(1<<53), h
}

// step advances the mutating-op counter and reports whether this
// operation is the crash point or is after it. Callers hold f.mu.
func (f *FaultFS) step() (op int64, crashNow bool, dead bool) {
	if f.crashed {
		return f.op, false, true
	}
	f.op++
	if f.cfg.CrashAtOp > 0 && f.op == f.cfg.CrashAtOp {
		return f.op, true, false
	}
	return f.op, false, false
}

// die marks the FS dead and fires the crash hook.
func (f *FaultFS) die() {
	f.crashed = true
	f.stats.Crashed = true
	if f.cfg.OnCrash != nil {
		f.cfg.OnCrash()
	}
}

// mutate wraps a non-write mutating operation with crash accounting.
func (f *FaultFS) mutate(run func() error) error {
	f.mu.Lock()
	_, crashNow, dead := f.step()
	if dead {
		f.mu.Unlock()
		return ErrCrashed
	}
	if crashNow {
		f.die()
		f.mu.Unlock()
		return ErrCrashed
	}
	f.mu.Unlock()
	return run()
}

// MkdirAll implements FS. Directory creation happens once at open and
// is not part of the fault surface.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	var inner File
	err := f.mutate(func() (err error) {
		inner, err = f.inner.Create(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	var inner File
	err := f.mutate(func() (err error) {
		inner, err = f.inner.OpenAppend(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// OpenRead implements FS. Reads after the crash fail like everything
// else — the process is dead; recovery happens in a fresh FS.
func (f *FaultFS) OpenRead(name string) (File, error) {
	f.mu.Lock()
	dead := f.crashed
	f.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	inner, err := f.inner.OpenRead(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, readonly: true}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	return f.mutate(func() error { return f.inner.Rename(oldname, newname) })
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	return f.mutate(func() error { return f.inner.Remove(name) })
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	return f.mutate(func() error { return f.inner.Truncate(name, size) })
}

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) { return f.inner.Size(name) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// SyncDir implements FS: subject to crash and sync-error injection.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	op, crashNow, dead := f.step()
	if dead {
		f.mu.Unlock()
		return ErrCrashed
	}
	if crashNow {
		f.die()
		f.mu.Unlock()
		return ErrCrashed
	}
	if p, _ := f.draw(opSync, op); p < f.cfg.SyncErrRate {
		f.stats.SyncErrs++
		f.mu.Unlock()
		return fmt.Errorf("store: dir sync: %w", errInjected)
	}
	f.mu.Unlock()
	return f.inner.SyncDir(dir)
}

// faultFile routes Write and Sync through the schedule.
type faultFile struct {
	fs       *FaultFS
	inner    File
	readonly bool
}

func (ff *faultFile) Read(p []byte) (int, error) {
	ff.fs.mu.Lock()
	dead := ff.fs.crashed
	ff.fs.mu.Unlock()
	if dead {
		return 0, ErrCrashed
	}
	return ff.inner.Read(p)
}

// Write persists p, subject to injection: a short write lands a
// hash-chosen prefix and fails; a byte flip corrupts one hash-chosen
// byte silently; the crash point lands a prefix and kills the FS.
func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.readonly {
		return 0, fmt.Errorf("store: write to read-only file")
	}
	f := ff.fs
	f.mu.Lock()
	op, crashNow, dead := f.step()
	if dead {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	if crashNow {
		// Land a deterministic prefix, then die.
		_, h := f.draw(opWrite, op)
		n := 0
		if len(p) > 0 {
			n = int(h % uint64(len(p)))
			_, _ = ff.inner.Write(p[:n])
			_ = ff.inner.Sync() // make the torn prefix the durable truth
		}
		f.die()
		f.mu.Unlock()
		return n, ErrCrashed
	}
	pShort, hShort := f.draw(opWrite, op)
	if pShort < f.cfg.ShortWriteRate && len(p) > 0 {
		n := int(hShort % uint64(len(p)))
		f.stats.ShortWrites++
		f.mu.Unlock()
		if n > 0 {
			if wn, err := ff.inner.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, fmt.Errorf("store: short write %d/%d: %w", n, len(p), errInjected)
	}
	pFlip, hFlip := f.draw(opWrite, ^op)
	if pFlip < f.cfg.FlipRate && len(p) > 0 {
		q := make([]byte, len(p))
		copy(q, p)
		i := int(hFlip % uint64(len(q)))
		q[i] ^= byte(1 + (hFlip>>17)%255) // never a no-op flip
		f.stats.FlippedByte++
		f.mu.Unlock()
		return ff.inner.Write(q)
	}
	f.mu.Unlock()
	return ff.inner.Write(p)
}

// Sync fsyncs, subject to sync-error and crash injection.
func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	op, crashNow, dead := f.step()
	if dead {
		f.mu.Unlock()
		return ErrCrashed
	}
	if crashNow {
		f.die()
		f.mu.Unlock()
		return ErrCrashed
	}
	if p, _ := f.draw(opSync, op); p < f.cfg.SyncErrRate {
		f.stats.SyncErrs++
		f.mu.Unlock()
		return fmt.Errorf("store: sync: %w", errInjected)
	}
	f.mu.Unlock()
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
