// Command repolint runs the repo's custom static analyzers
// (internal/lint) over the module: determinism, nopanic, obsnoop,
// printban, and the v2 interprocedural passes hotalloc, ctxflow, and
// lockcheck — the compile-time half of the invariants the runtime test
// suites pin dynamically. CI runs it alongside stock vet/staticcheck;
// a non-zero exit means an invariant regressed.
//
// Usage:
//
//	go run ./cmd/repolint ./...          # whole module (from anywhere inside it)
//	go run ./cmd/repolint ./internal/fm  # one package
//	go run ./cmd/repolint -json ./...    # machine-readable findings
//	go run ./cmd/repolint -list          # describe the analyzers
//
// repolint is a multichecker over internal/lint/analysis, the repo's
// vendored-minimal mirror of golang.org/x/tools/go/analysis; see that
// package for why x/tools itself is not imported.
//
// Packages are analyzed twice when they contain build-tag variants the
// default file selection would skip: once plainly and once with the
// deltacheck tag, so the code the differential CI job compiles is
// linted too. Findings are deduplicated by position, analyzer, and
// message across the two passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// extraTagSets are the build-tag combinations linted in addition to the
// default selection. Each entry triggers a second pass over only the
// packages that actually have files behind those tags.
var extraTagSets = [][]string{{"deltacheck"}}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one diagnostic in the driver's output order. The field
// order and names are the machine-readable contract of -json.
type finding struct {
	Pkg      string `json:"pkg"`
	Pos      string `json:"pos"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	modPath, modDir, err := loader.FindModule(".")
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	pkgs, err := expandPatterns(fs.Args(), modPath, modDir)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}

	var diags []finding
	seen := make(map[finding]bool)
	collect := func(tags []string, pkgPaths []string) int {
		l := loader.New(loader.Config{ModulePath: modPath, ModuleDir: modDir, BuildTags: tags})
		for _, pkgPath := range pkgPaths {
			pkg, err := l.Load(pkgPath)
			if err != nil {
				fmt.Fprintln(stderr, "repolint:", err)
				return 2
			}
			for _, a := range analyzers {
				pass := &analysis.Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Syntax,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
				}
				pass.Dep = func(path string) *analysis.DepInfo {
					dep, err := l.Load(path)
					if err != nil || len(dep.Syntax) == 0 {
						return nil
					}
					return &analysis.DepInfo{
						PkgPath:   dep.PkgPath,
						Files:     dep.Syntax,
						Pkg:       dep.Types,
						TypesInfo: dep.TypesInfo,
					}
				}
				pass.Report = func(d analysis.Diagnostic) {
					dg := finding{
						Pkg:      pkgPath,
						Pos:      pkg.Fset.Position(d.Pos).String(),
						Analyzer: a.Name,
						Message:  d.Message,
					}
					if !seen[dg] {
						seen[dg] = true
						diags = append(diags, dg)
					}
				}
				if _, err := a.Run(pass); err != nil {
					fmt.Fprintf(stderr, "repolint: %s on %s: %v\n", a.Name, pkgPath, err)
					return 2
				}
			}
		}
		return 0
	}

	if rc := collect(nil, pkgs); rc != 0 {
		return rc
	}
	for _, tags := range extraTagSets {
		tagged, err := taggedPackages(pkgs, modPath, modDir, tags)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		if len(tagged) == 0 {
			continue
		}
		if rc := collect(tags, tagged); rc != 0 {
			return rc
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	if *asJSON {
		if diags == nil {
			diags = []finding{} // emit [], not null
		}
		data, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "repolint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// taggedPackages filters pkgs down to those containing at least one
// .go file constrained on any of the given build tags — the packages
// whose default-selection lint run left code unseen.
func taggedPackages(pkgs []string, modPath, modDir string, tags []string) ([]string, error) {
	var out []string
	for _, p := range pkgs {
		rel := strings.TrimPrefix(strings.TrimPrefix(p, modPath), "/")
		dir := filepath.Join(modDir, filepath.FromSlash(rel))
		has, err := dirHasTaggedFile(dir, tags)
		if err != nil {
			return nil, err
		}
		if has {
			out = append(out, p)
		}
	}
	return out, nil
}

func dirHasTaggedFile(dir string, tags []string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return false, err
		}
		// Only the pre-package header can hold constraints; scanning the
		// first KB avoids parsing.
		head := string(data)
		if len(head) > 1024 {
			head = head[:1024]
		}
		for _, line := range strings.Split(head, "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "//go:build ") {
				continue
			}
			for _, tag := range tags {
				if strings.Contains(line, tag) {
					return true, nil
				}
			}
		}
	}
	return false, nil
}

// expandPatterns turns command-line package patterns into module import
// paths. "./..." (the default) is the whole module; "./dir/..." is a
// subtree; "./dir" is a single package. Patterns are interpreted
// relative to the module root, so repolint behaves the same from any
// directory inside the module.
func expandPatterns(patterns []string, modPath, modDir string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := loader.ModulePackages(modPath, modDir)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := modJoin(modPath, strings.TrimSuffix(pat, "/..."))
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages match %q", pat)
			}
		default:
			p := modJoin(modPath, pat)
			if !hasGoFiles(modDir, modPath, p) {
				return nil, fmt.Errorf("no package at %q", pat)
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// modJoin maps a ./-relative pattern onto the module import path.
func modJoin(modPath, pat string) string {
	pat = path.Clean(strings.TrimPrefix(strings.TrimPrefix(pat, "./"), modPath+"/"))
	if pat == "." || pat == modPath {
		return modPath
	}
	return modPath + "/" + pat
}

func hasGoFiles(modDir, modPath, pkgPath string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modPath), "/")
	ents, err := os.ReadDir(filepath.Join(modDir, filepath.FromSlash(rel)))
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
