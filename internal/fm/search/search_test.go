package search

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/tech"
)

func smallRec(t *testing.T, n int) (*fm.Graph, *fm.Domain) {
	t.Helper()
	g, dom, err := fm.Recurrence{
		Name: "dp",
		Dims: []int{n, n},
		Deps: [][]int{{1, 1}, {1, 0}, {0, 1}},
		Op:   tech.OpAdd,
		Bits: 32,
	}.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return g, dom
}

func randomGraph(seed int64, ops int) *fm.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := fm.NewBuilder("rand")
	ids := []fm.NodeID{b.Input(32), b.Input(32)}
	for i := 0; i < ops; i++ {
		d1 := ids[rng.Intn(len(ids))]
		d2 := ids[rng.Intn(len(ids))]
		ids = append(ids, b.Op(tech.OpAdd, 32, d1, d2))
	}
	b.MarkOutput(ids[len(ids)-1])
	return b.Build()
}

func TestASAPLegal(t *testing.T) {
	tgt := fm.DefaultTarget(4, 4)
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 40)
		rng := rand.New(rand.NewSource(seed + 100))
		place := make([]geom.Point, g.NumNodes())
		for i := range place {
			place[i] = tgt.Grid.At(rng.Intn(tgt.Grid.Nodes()))
		}
		sched := ASAP(g, place, tgt)
		if err := fm.Check(g, sched, tgt); err != nil {
			t.Fatalf("seed %d: ASAP schedule illegal: %v", seed, err)
		}
		// ASAP preserves the requested placement.
		for n := range place {
			if sched[n].Place != place[n] {
				t.Fatalf("seed %d: ASAP moved node %d", seed, n)
			}
		}
	}
}

func TestASAPPanicsOnLengthMismatch(t *testing.T) {
	g := randomGraph(1, 5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ASAP(g, nil, fm.DefaultTarget(2, 2))
}

func TestAnnealImprovesOrMatchesDefault(t *testing.T) {
	tgt := fm.DefaultTarget(4, 1)
	g := randomGraph(3, 60)
	def, err := fm.Evaluate(g, fm.ListSchedule(g, tgt), tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sched, cost := Anneal(g, tgt, AnnealOptions{Iters: 300, Seed: 42})
	if err := fm.Check(g, sched, tgt); err != nil {
		t.Fatalf("annealed schedule illegal: %v", err)
	}
	if cost.Cycles > def.Cycles {
		t.Errorf("anneal (%d cycles) worse than its own starting point (%d)", cost.Cycles, def.Cycles)
	}
}

func TestAnnealEnergyObjectivePrefersLocality(t *testing.T) {
	// Minimizing energy should drive wire energy toward zero (everything
	// co-located), even if that serializes execution.
	tgt := fm.DefaultTarget(4, 1)
	g := randomGraph(5, 40)
	_, cost := Anneal(g, tgt, AnnealOptions{Iters: 1500, Seed: 7, Objective: MinEnergy})
	if cost.WireEnergy != 0 {
		t.Errorf("energy-optimal mapping still moves data: wire = %g fJ", cost.WireEnergy)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	tgt := fm.DefaultTarget(3, 1)
	g := randomGraph(9, 30)
	_, c1 := Anneal(g, tgt, AnnealOptions{Iters: 200, Seed: 11})
	_, c2 := Anneal(g, tgt, AnnealOptions{Iters: 200, Seed: 11})
	if c1.Cycles != c2.Cycles || c1.EnergyFJ != c2.EnergyFJ {
		t.Errorf("same seed diverged: %v vs %v", c1, c2)
	}
}

func TestExhaustive2DFindsParallelMapping(t *testing.T) {
	g, dom := smallRec(t, 8)
	tgt := fm.DefaultTarget(4, 1)
	tgt.MemWordsPerNode = 1 << 20
	cands := Exhaustive2D(g, dom, tgt, Affine2DOptions{P: 4, MaxTau: 12})
	if len(cands) < 2 {
		t.Fatalf("only %d candidates", len(cands))
	}
	// Every candidate must be legal (Check already ran; re-verify a few).
	for _, c := range cands[:min(3, len(cands))] {
		if err := fm.Check(g, c.Sched, tgt); err != nil {
			t.Fatalf("candidate %q illegal: %v", c.Name, err)
		}
	}
	best := Best(cands, MinTime)
	var serial Candidate
	for _, c := range cands {
		if c.Name == "serial" {
			serial = c
		}
	}
	if serial.Sched == nil {
		t.Fatal("serial candidate missing")
	}
	if best.Cost.Cycles >= serial.Cost.Cycles {
		t.Errorf("search failed to beat serial: best %d vs serial %d cycles", best.Cost.Cycles, serial.Cost.Cycles)
	}
	// Energy objective should pick a zero-wire mapping.
	bestE := Best(cands, MinEnergy)
	if bestE.Cost.WireEnergy != 0 {
		t.Errorf("energy-best candidate moves data: %v", bestE.Cost)
	}
	// Results are sorted by time.
	for i := 1; i < len(cands); i++ {
		if cands[i].Cost.Cycles < cands[i-1].Cost.Cycles {
			t.Fatal("candidates not sorted by time")
		}
	}
}

// TestExhaustive2DContextCut: a dead context skips every tuple — the
// sweep returns just the always-included serial candidate instead of
// panicking or blocking — and both the pooled and inline dispatch paths
// honor the cut. A live context changes nothing.
func TestExhaustive2DContextCut(t *testing.T) {
	g, dom := smallRec(t, 8)
	tgt := fm.DefaultTarget(4, 1)
	tgt.MemWordsPerNode = 1 << 20

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} { // 1 = inline path, 4 = pool path
		cands := Exhaustive2D(g, dom, tgt, Affine2DOptions{P: 4, MaxTau: 12, Workers: workers, Context: dead})
		if len(cands) != 1 || cands[0].Name != "serial" {
			t.Fatalf("workers=%d: dead-context sweep returned %d candidates, want only serial", workers, len(cands))
		}
	}

	full := Exhaustive2D(g, dom, tgt, Affine2DOptions{P: 4, MaxTau: 12})
	live := Exhaustive2D(g, dom, tgt, Affine2DOptions{P: 4, MaxTau: 12, Context: context.Background()})
	if len(live) != len(full) {
		t.Fatalf("live context changed the sweep: %d vs %d candidates", len(live), len(full))
	}
	for i := range full {
		if live[i].Name != full[i].Name || live[i].Cost != full[i].Cost {
			t.Fatalf("candidate %d differs under a live context: %+v vs %+v", i, live[i], full[i])
		}
	}
}

func TestParetoFront(t *testing.T) {
	mk := func(cycles int64, energy float64) Candidate {
		return Candidate{Cost: fm.Cost{Cycles: cycles, EnergyFJ: energy}}
	}
	cands := []Candidate{
		mk(10, 100), // on front
		mk(20, 50),  // on front
		mk(20, 120), // dominated by (10,100) on energy? no: 20>10 cycles and 120>100 -> dominated
		mk(5, 300),  // on front
		mk(30, 50),  // dominated by (20,50)
	}
	front := Pareto(cands)
	if len(front) != 3 {
		t.Fatalf("front size = %d: %+v", len(front), front)
	}
	if front[0].Cost.Cycles != 5 || front[1].Cost.Cycles != 10 || front[2].Cost.Cycles != 20 {
		t.Errorf("front order wrong: %+v", front)
	}
}

func TestParetoDuplicatesSurvive(t *testing.T) {
	mk := func(cycles int64, energy float64) Candidate {
		return Candidate{Cost: fm.Cost{Cycles: cycles, EnergyFJ: energy}}
	}
	front := Pareto([]Candidate{mk(10, 10), mk(10, 10)})
	if len(front) != 2 {
		t.Errorf("equal candidates should not dominate each other: %d", len(front))
	}
}

func TestObjectiveValues(t *testing.T) {
	c := fm.Cost{Cycles: 10, EnergyFJ: 5, PeakWordsPerNode: 3}
	if MinTime.Value(c) != 10 || MinEnergy.Value(c) != 5 || MinEDP.Value(c) != 50 {
		t.Error("objective values wrong")
	}
	if MinFootprint.Value(c) <= MinFootprint.Value(fm.Cost{Cycles: 10, EnergyFJ: 5, PeakWordsPerNode: 2}) {
		t.Error("footprint ordering wrong")
	}
	for _, o := range []Objective{MinTime, MinEnergy, MinEDP, MinFootprint} {
		if o.String() == "" {
			t.Error("empty objective name")
		}
	}
	if Objective(9).String() != "Objective(9)" {
		t.Error("unknown objective string")
	}
}

func TestBestPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Best(nil, MinTime)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
