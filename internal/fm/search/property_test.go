package search

import (
	"math/rand"
	"testing"

	"repro/internal/fm"
	"repro/internal/geom"
)

// Search invariants, checked over seeded families of inputs rather than
// single fixtures: every candidate a searcher returns is legal under the
// fm checker, and no dominated point ever appears on a Pareto frontier.

func TestExhaustive2DEveryCandidateLegal(t *testing.T) {
	for _, n := range []int{4, 7, 9} {
		g, dom := smallRec(t, n)
		tgt := fm.DefaultTarget(4, 1)
		tgt.MemWordsPerNode = 1 << 20
		cands := Exhaustive2D(g, dom, tgt, Affine2DOptions{P: 4, MaxTau: 10, Workers: 4})
		if len(cands) < 2 {
			t.Fatalf("n=%d: only %d candidates", n, len(cands))
		}
		for _, c := range cands {
			if err := fm.Check(g, c.Sched, tgt); err != nil {
				t.Fatalf("n=%d: candidate %q illegal: %v", n, c.Name, err)
			}
		}
	}
}

func TestAnnealResultLegalAcrossSeedsAndChains(t *testing.T) {
	tgt := fm.DefaultTarget(4, 2)
	for seed := int64(0); seed < 6; seed++ {
		for _, chains := range []int{1, 3} {
			g := randomGraph(seed, 40)
			sched, cost := Anneal(g, tgt, AnnealOptions{
				Iters: 150, Seed: seed, Chains: chains, ExchangeEvery: 50, Workers: 4,
			})
			if err := fm.Check(g, sched, tgt); err != nil {
				t.Fatalf("seed=%d chains=%d: annealed schedule illegal: %v", seed, chains, err)
			}
			// The reported cost must be the schedule's true cost, not a
			// stale or cache-corrupted value.
			if got := mustEval(g, sched, tgt); got != cost {
				t.Fatalf("seed=%d chains=%d: reported cost %v, re-evaluated %v", seed, chains, got, cost)
			}
		}
	}
}

func TestEvalCacheDeltaAgreement(t *testing.T) {
	// The delta evaluator's cache contract: costs it publishes (Put) and
	// costs the cache computes itself (Eval → full Evaluate) must be
	// bit-identical for the same (graph, schedule, target) fingerprints,
	// so a cache populated by either source serves the other and no
	// caller can tell which path priced an entry. Checked over a random
	// accepted-move walk: every committed mapping is priced three ways —
	// delta, cache miss (full eval), cache hit — and all must agree.
	tgt := fm.DefaultTarget(4, 2)
	for seed := int64(0); seed < 4; seed++ {
		g := randomGraph(seed, 50)
		gfp := g.Fingerprint()
		d, err := fm.NewDeltaEvaluator(g, tgt)
		if err != nil {
			t.Fatal(err)
		}
		init := fm.ListSchedule(g, tgt)
		place := make([]geom.Point, g.NumNodes())
		for n := range place {
			place[n] = init[n].Place
		}
		if _, err := d.Reset(ASAP(g, place, tgt)); err != nil {
			t.Fatal(err)
		}
		evalSide := NewEvalCache() // populated by full evaluation
		putSide := NewEvalCache()  // populated by delta-derived Put
		rng := rand.New(rand.NewSource(seed))
		accepted := 0
		var sched fm.Schedule
		for move := 0; move < 120; move++ {
			n := rng.Intn(g.NumNodes())
			to := tgt.Grid.At(rng.Intn(tgt.Grid.Nodes()))
			cand := d.Propose(fm.NodeID(n), to)
			if rng.Intn(2) == 0 {
				continue // rejected proposals publish nothing
			}
			d.Commit()
			accepted++
			sched = d.Snapshot(sched)
			sfp := sched.Fingerprint()

			// Miss path: the cache prices the mapping through the full
			// evaluator and must agree with the delta cost bit for bit.
			if got := evalSide.Eval(g, gfp, sched, tgt); got != cand {
				t.Fatalf("seed=%d move=%d: cache full eval %+v != delta cost %+v", seed, move, got, cand)
			}
			// Hit path: the probe must find that entry and agree.
			if got, ok := evalSide.Lookup(gfp, sfp, tgt); !ok || got != cand {
				t.Fatalf("seed=%d move=%d: lookup after eval: hit=%v cost=%+v", seed, move, ok, got)
			}
			// Put path: publishing the delta cost must be
			// indistinguishable from having evaluated — a later Eval of
			// the same mapping hits and returns the same bits the full
			// evaluator would.
			putSide.Put(gfp, sfp, tgt, cand)
			hitsBefore, _ := putSide.Stats()
			if got := putSide.Eval(g, gfp, sched, tgt); got != cand {
				t.Fatalf("seed=%d move=%d: Eval after Put returned %+v, want %+v", seed, move, got, cand)
			}
			if hitsAfter, _ := putSide.Stats(); hitsAfter != hitsBefore+1 {
				t.Fatalf("seed=%d move=%d: Eval after Put re-evaluated instead of hitting", seed, move)
			}
		}
		if accepted == 0 {
			t.Fatalf("seed=%d: walk accepted no moves", seed)
		}
	}
}

// dominates reports whether d strictly dominates c in (time, energy).
func dominates(d, c Candidate) bool {
	return d.Cost.Cycles <= c.Cost.Cycles && d.Cost.EnergyFJ <= c.Cost.EnergyFJ &&
		(d.Cost.Cycles < c.Cost.Cycles || d.Cost.EnergyFJ < c.Cost.EnergyFJ)
}

func checkFrontier(t *testing.T, tag string, cands, front []Candidate) {
	t.Helper()
	// No point on the front is dominated by any candidate at all.
	for _, f := range front {
		for _, c := range cands {
			if dominates(c, f) {
				t.Fatalf("%s: frontier point %v dominated by %v", tag, f.Cost, c.Cost)
			}
		}
	}
	// Every candidate off the front is dominated by someone (completeness:
	// the front is exactly the non-dominated set, counted by multiset).
	onFront := make(map[fm.Cost]int)
	for _, f := range front {
		onFront[f.Cost]++
	}
	for _, c := range cands {
		if onFront[c.Cost] > 0 {
			onFront[c.Cost]--
			continue
		}
		dom := false
		for _, d := range cands {
			if dominates(d, c) {
				dom = true
				break
			}
		}
		if !dom {
			t.Fatalf("%s: non-dominated candidate %v missing from frontier", tag, c.Cost)
		}
	}
}

func TestParetoNoDominatedPointRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{Cost: fm.Cost{
				Cycles:   int64(rng.Intn(12)), // small ranges force ties and duplicates
				EnergyFJ: float64(rng.Intn(12)),
			}}
		}
		checkFrontier(t, "random", cands, Pareto(cands))
	}
}

func TestParetoNoDominatedPointFromSearch(t *testing.T) {
	g, dom := smallRec(t, 8)
	tgt := fm.DefaultTarget(4, 1)
	tgt.MemWordsPerNode = 1 << 20
	cands := Exhaustive2D(g, dom, tgt, Affine2DOptions{P: 4, MaxTau: 12, Workers: 4})
	front := Pareto(cands)
	if len(front) == 0 {
		t.Fatal("empty frontier from a non-empty candidate set")
	}
	checkFrontier(t, "search", cands, front)
}
