package hotalloctest

import "fmt"

// Stacked directives: a panic allow and an alloc allow above one
// statement must BOTH reach it — the chain rule in directive.go. This
// is the real-tree idiom for contract-guard panics on hot paths, where
// the panic call and its Sprintf argument need different kinds.
//
//lint:hotpath
func stacked(v int) int {
	if v < 0 {
		//lint:allow panic(fixture: contract guard)
		//lint:allow alloc(fixture: unreachable Sprintf feeding the guard)
		panic(fmt.Sprintf("negative %d", v))
	}
	return v * 2
}

// A lone panic allow must NOT bleed into the alloc kind: the Sprintf
// still reports.
//
//lint:hotpath
func halfStacked(v int) int {
	if v < 0 {
		//lint:allow panic(fixture: contract guard)
		panic(fmt.Sprintf("negative %d", v)) // want "hotpath halfStacked: fmt.Sprintf allocates"
	}
	return v * 3
}
