package noc

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// offeredLoad injects uniform-random messages, one per source node every
// gap picoseconds, in global time order (the link-occupancy model, like
// any event-driven simulation, assumes causally ordered injection), and
// returns the mean latency.
func offeredLoad(t *testing.T, mode Mode, msgs int, gap float64, seed int64) float64 {
	t.Helper()
	n := New(Config{Grid: geom.NewGrid(8, 8, 1.0), Tech: tech.N5(), Mode: mode})
	rng := rand.New(rand.NewSource(seed))
	type msg struct {
		t0       float64
		src, dst geom.Point
	}
	nextInject := make(map[geom.Point]float64)
	var queue []msg
	for len(queue) < msgs {
		src := geom.Pt(rng.Intn(8), rng.Intn(8))
		dst := geom.Pt(rng.Intn(8), rng.Intn(8))
		if src == dst {
			continue
		}
		queue = append(queue, msg{t0: nextInject[src], src: src, dst: dst})
		nextInject[src] += gap
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].t0 < queue[j].t0 })
	var total float64
	for _, m := range queue {
		arr, _ := n.Send(m.t0, m.src, m.dst, 128)
		total += arr - m.t0
	}
	return total / float64(len(queue))
}

// TestLatencyLoadCurve is the canonical interconnect validation: mean
// latency grows monotonically-ish as offered load rises, and explodes
// past saturation. (Dally's own research lineage — wormhole routing and
// virtual channels — exists to push this curve rightward.)
func TestLatencyLoadCurve(t *testing.T) {
	const msgs = 2000
	// Gap = time between injections per node; smaller gap = higher load.
	light := offeredLoad(t, CutThrough, msgs, 200_000, 1)
	medium := offeredLoad(t, CutThrough, msgs, 20_000, 1)
	heavy := offeredLoad(t, CutThrough, msgs, 2_000, 1)

	if light > medium || medium > heavy {
		t.Errorf("latency should rise with load: %.0f -> %.0f -> %.0f ps", light, medium, heavy)
	}
	if heavy < 2*light {
		t.Errorf("saturation should at least double latency: light %.0f vs heavy %.0f", light, heavy)
	}
	// Light load approaches the uncontended average: mean hop distance on
	// an 8x8 mesh is ~5.3 hops of ~900 ps plus 3 extra flit cycles.
	n := New(Config{Grid: geom.NewGrid(8, 8, 1.0), Tech: tech.N5()})
	uncontended := n.UncontendedLatency(5, 128)
	if light > 2*uncontended {
		t.Errorf("light-load latency %.0f ps far above uncontended %.0f ps", light, uncontended)
	}
}

// TestStoreAndForwardSaturatesEarlier compares the switching modes under
// identical traffic: store-and-forward holds each link for the full
// packet per hop, so at every load level it is slower.
func TestStoreAndForwardSaturatesEarlier(t *testing.T) {
	const msgs = 1500
	for _, gap := range []float64{200_000, 10_000} {
		ct := offeredLoad(t, CutThrough, msgs, gap, 7)
		sf := offeredLoad(t, StoreAndForward, msgs, gap, 7)
		if sf <= ct {
			t.Errorf("gap %.0f: store-and-forward (%.0f ps) should exceed cut-through (%.0f ps)", gap, sf, ct)
		}
	}
}
