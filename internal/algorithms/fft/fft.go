// Package fft provides the paper's example of function multiplicity:
// "For a given problem - there may be several functions that compute the
// result (e.g., decimation in time vs decimation in space FFT, or
// different radix FFT)." (Dally, section 3.)
//
// Four functions compute the same transform — recursive and iterative
// decimation-in-time radix-2, decimation-in-frequency radix-2, and
// recursive radix-4 — all verified against the O(n^2) DFT definition.
// graph.go additionally expresses the butterfly network as an F&M
// dataflow graph so each function/mapping pair can be priced explicitly;
// "when comparing two FFT algorithms that are both O(NlogN)", the cost
// model is what says which constant factors you are buying.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

func checkPow2(n int) {
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
}

// NaiveDFT is the O(n^2) definition, the correctness oracle.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

// DITRecursive is the textbook recursive radix-2 decimation-in-time FFT.
func DITRecursive(x []complex128) []complex128 {
	n := len(x)
	checkPow2(n)
	return ditRec(x)
}

func ditRec(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return []complex128{x[0]}
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	fe, fo := ditRec(even), ditRec(odd)
	out := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		t := w * fo[k]
		out[k] = fe[k] + t
		out[k+n/2] = fe[k] - t
	}
	return out
}

// bitReverse permutes x by bit-reversed index, in place.
func bitReverse(x []complex128) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// DITIterative is the in-place iterative radix-2 DIT FFT: bit-reverse,
// then log2(n) butterfly stages of increasing span.
func DITIterative(x []complex128) []complex128 {
	n := len(x)
	checkPow2(n)
	out := append([]complex128(nil), x...)
	bitReverse(out)
	for span := 2; span <= n; span *= 2 {
		half := span / 2
		wStep := cmplx.Exp(complex(0, -2*math.Pi/float64(span)))
		for start := 0; start < n; start += span {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a, b := out[start+k], out[start+k+half]*w
				out[start+k] = a + b
				out[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return out
}

// DIFIterative is the iterative radix-2 decimation-in-frequency FFT:
// butterfly stages of decreasing span, then a bit-reversal to restore
// natural output order. Same flop count as DIT, mirrored dataflow.
func DIFIterative(x []complex128) []complex128 {
	n := len(x)
	checkPow2(n)
	out := append([]complex128(nil), x...)
	for span := n; span >= 2; span /= 2 {
		half := span / 2
		wStep := cmplx.Exp(complex(0, -2*math.Pi/float64(span)))
		for start := 0; start < n; start += span {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a, b := out[start+k], out[start+k+half]
				out[start+k] = a + b
				out[start+k+half] = (a - b) * w
				w *= wStep
			}
		}
	}
	bitReverse(out)
	return out
}

// Radix4Recursive is the recursive radix-4 DIT FFT; n must be a power of
// four. Radix 4 trades twiddle multiplies for free multiplications by
// +/-i, cutting complex multiplies by roughly 25% — the constant-factor
// difference between functions the panel statement insists matters.
func Radix4Recursive(x []complex128) []complex128 {
	n := len(x)
	if n == 0 || !isPow4(n) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("fft: length %d is not a power of four", n))
	}
	return r4(x)
}

func isPow4(n int) bool {
	return n&(n-1) == 0 && bits.TrailingZeros(uint(n))%2 == 0
}

func r4(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return []complex128{x[0]}
	}
	q := n / 4
	subs := make([][]complex128, 4)
	for r := 0; r < 4; r++ {
		s := make([]complex128, q)
		for j := 0; j < q; j++ {
			s[j] = x[4*j+r]
		}
		subs[r] = r4(s)
	}
	out := make([]complex128, n)
	minusI := complex(0, -1)
	for k := 0; k < q; k++ {
		w1 := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		w2 := w1 * w1
		w3 := w2 * w1
		a := subs[0][k]
		b := subs[1][k] * w1
		c := subs[2][k] * w2
		d := subs[3][k] * w3
		out[k] = a + b + c + d
		out[k+q] = a + minusI*b - c - minusI*d
		out[k+2*q] = a - b + c - d
		out[k+3*q] = a - minusI*b - c + minusI*d
	}
	return out
}

// Inverse computes the inverse FFT via conjugation: ifft(x) =
// conj(fft(conj(x)))/n, using the iterative DIT kernel.
func Inverse(x []complex128) []complex128 {
	n := len(x)
	checkPow2(n)
	tmp := make([]complex128, n)
	for i, v := range x {
		tmp[i] = cmplx.Conj(v)
	}
	y := DITIterative(tmp)
	for i, v := range y {
		y[i] = cmplx.Conj(v) / complex(float64(n), 0)
	}
	return y
}

// MulCount returns the complex-multiply count of each function — the
// constant factor the radix choice buys. Radix-2: (n/2)(log2 n - 1)
// nontrivial twiddles (stage 1 twiddles are all 1). Radix-4:
// (3n/4)(log4 n - 1) nontrivial twiddles.
func MulCount(n int, radix int) int {
	checkPow2(n)
	switch radix {
	case 2:
		stages := bits.TrailingZeros(uint(n))
		if stages == 0 {
			return 0
		}
		return n / 2 * (stages - 1)
	case 4:
		if !isPow4(n) {
			//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
			panic(fmt.Sprintf("fft: %d is not a power of four", n))
		}
		stages := bits.TrailingZeros(uint(n)) / 2
		if stages == 0 {
			return 0
		}
		return 3 * n / 4 * (stages - 1)
	default:
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("fft: unsupported radix %d", radix))
	}
}
