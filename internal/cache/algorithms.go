package cache

import "fmt"

// Mat describes a row-major matrix in the simulated address space; the
// algorithms below drive its access pattern through a Sim without storing
// any data (the ideal-cache model prices movement, not arithmetic).
type Mat struct {
	Base       int64
	Rows, Cols int
}

// Addr returns the address of element (i, j).
func (m Mat) Addr(i, j int) int64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("cache: index (%d,%d) outside %dx%d matrix", i, j, m.Rows, m.Cols))
	}
	return m.Base + int64(i)*int64(m.Cols) + int64(j)
}

// Words returns the footprint of the matrix.
func (m Mat) Words() int64 { return int64(m.Rows) * int64(m.Cols) }

// NewMats lays out matrices consecutively from address 0 with the given
// shapes, returning one Mat per (rows, cols) pair.
func NewMats(shapes ...[2]int) []Mat {
	var out []Mat
	var base int64
	for _, s := range shapes {
		m := Mat{Base: base, Rows: s[0], Cols: s[1]}
		out = append(out, m)
		base += m.Words()
	}
	return out
}

// TransposeNaive writes dst = src^T with the doubly nested loop: src is
// scanned by rows (good) but dst by columns (one miss per element once
// the matrix exceeds the cache): Q = Theta(n^2).
func TransposeNaive(s *Sim, src, dst Mat) {
	checkTranspose(src, dst)
	for i := 0; i < src.Rows; i++ {
		for j := 0; j < src.Cols; j++ {
			s.Access(src.Addr(i, j))
			s.Access(dst.Addr(j, i))
		}
	}
}

// TransposeBlocked tiles the transpose with blk x blk blocks, the
// cache-AWARE version: optimal Q = Theta(n^2/B) only when blk is tuned so
// two blocks fit the target level.
func TransposeBlocked(s *Sim, src, dst Mat, blk int) {
	checkTranspose(src, dst)
	if blk <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("cache: invalid block size %d", blk))
	}
	for bi := 0; bi < src.Rows; bi += blk {
		for bj := 0; bj < src.Cols; bj += blk {
			for i := bi; i < min(bi+blk, src.Rows); i++ {
				for j := bj; j < min(bj+blk, src.Cols); j++ {
					s.Access(src.Addr(i, j))
					s.Access(dst.Addr(j, i))
				}
			}
		}
	}
}

// TransposeCO is the cache-OBLIVIOUS transpose: recursively split the
// larger dimension until the tile is tiny, giving Q = Theta(n^2/B) at
// every cache level simultaneously, with no tuning parameter.
func TransposeCO(s *Sim, src, dst Mat) {
	checkTranspose(src, dst)
	var rec func(i0, i1, j0, j1 int)
	rec = func(i0, i1, j0, j1 int) {
		di, dj := i1-i0, j1-j0
		if di <= 8 && dj <= 8 {
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					s.Access(src.Addr(i, j))
					s.Access(dst.Addr(j, i))
				}
			}
			return
		}
		if di >= dj {
			mid := i0 + di/2
			rec(i0, mid, j0, j1)
			rec(mid, i1, j0, j1)
		} else {
			mid := j0 + dj/2
			rec(i0, i1, j0, mid)
			rec(i0, i1, mid, j1)
		}
	}
	rec(0, src.Rows, 0, src.Cols)
}

func checkTranspose(src, dst Mat) {
	if src.Rows != dst.Cols || src.Cols != dst.Rows {
		panic(fmt.Sprintf("cache: transpose shape mismatch %dx%d -> %dx%d",
			src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
}

// MatMulIJK drives C += A*B with the classic triple loop: B is walked by
// columns, missing on essentially every inner access once B exceeds the
// cache: Q = Theta(n^3).
func MatMulIJK(s *Sim, a, b, c Mat) {
	checkMatMul(a, b, c)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s.Access(c.Addr(i, j))
			for k := 0; k < a.Cols; k++ {
				s.Access(a.Addr(i, k))
				s.Access(b.Addr(k, j))
			}
			s.Access(c.Addr(i, j))
		}
	}
}

// MatMulBlocked tiles all three loops with blk x blk blocks (cache-aware):
// Q = Theta(n^3 / (B*sqrt(M))) when blk ~ sqrt(M/3) for the target level.
func MatMulBlocked(s *Sim, a, b, c Mat, blk int) {
	checkMatMul(a, b, c)
	if blk <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("cache: invalid block size %d", blk))
	}
	n, m, p := a.Rows, a.Cols, b.Cols
	for bi := 0; bi < n; bi += blk {
		for bj := 0; bj < p; bj += blk {
			for bk := 0; bk < m; bk += blk {
				for i := bi; i < min(bi+blk, n); i++ {
					for j := bj; j < min(bj+blk, p); j++ {
						s.Access(c.Addr(i, j))
						for k := bk; k < min(bk+blk, m); k++ {
							s.Access(a.Addr(i, k))
							s.Access(b.Addr(k, j))
						}
						s.Access(c.Addr(i, j))
					}
				}
			}
		}
	}
}

// MatMulCO is the cache-oblivious recursive matrix multiply: split the
// largest of the three dimensions in half until the subproblem is tiny.
// Q = Theta(n^3/(B*sqrt(M))) at every level, no tuning.
func MatMulCO(s *Sim, a, b, c Mat) {
	checkMatMul(a, b, c)
	var rec func(i0, i1, j0, j1, k0, k1 int)
	rec = func(i0, i1, j0, j1, k0, k1 int) {
		di, dj, dk := i1-i0, j1-j0, k1-k0
		if di <= 8 && dj <= 8 && dk <= 8 {
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					s.Access(c.Addr(i, j))
					for k := k0; k < k1; k++ {
						s.Access(a.Addr(i, k))
						s.Access(b.Addr(k, j))
					}
					s.Access(c.Addr(i, j))
				}
			}
			return
		}
		switch {
		case di >= dj && di >= dk:
			mid := i0 + di/2
			rec(i0, mid, j0, j1, k0, k1)
			rec(mid, i1, j0, j1, k0, k1)
		case dj >= dk:
			mid := j0 + dj/2
			rec(i0, i1, j0, mid, k0, k1)
			rec(i0, i1, mid, j1, k0, k1)
		default:
			mid := k0 + dk/2
			rec(i0, i1, j0, j1, k0, mid)
			rec(i0, i1, j0, j1, mid, k1)
		}
	}
	rec(0, a.Rows, 0, b.Cols, 0, a.Cols)
}

func checkMatMul(a, b, c Mat) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("cache: matmul shape mismatch %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
}

// MergeSortTrace drives the access pattern of a (cache-oblivious)
// top-down merge sort of n words at base, using a temp buffer right after
// the array: Q = Theta((n/B) log(n/M)).
func MergeSortTrace(s *Sim, base int64, n int) {
	if n < 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("cache: invalid sort length %d", n))
	}
	tmp := base + int64(n)
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= 1 {
			if hi-lo == 1 {
				s.Access(base + int64(lo))
			}
			return
		}
		mid := (lo + hi) / 2
		rec(lo, mid)
		rec(mid, hi)
		// Merge: read both runs sequentially, write to tmp, copy back.
		i, j := lo, mid
		for k := lo; k < hi; k++ {
			if j >= hi || (i < mid && (k%2 == 0 || j >= hi)) {
				s.Access(base + int64(i))
				i++
			} else {
				s.Access(base + int64(j))
				j++
			}
			s.Access(tmp + int64(k))
		}
		for k := lo; k < hi; k++ {
			s.Access(tmp + int64(k))
			s.Access(base + int64(k))
		}
	}
	rec(0, n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
