package cache_test

import (
	"fmt"

	"repro/internal/cache"
)

// Example measures the same transpose three ways on the ideal-cache
// model: the naive column walk thrashes, the blocked and cache-oblivious
// versions stay near the compulsory-miss floor of 2n^2/B.
func Example() {
	const n = 128
	level := cache.Level{MWords: 1024, BWords: 16}
	run := func(f func(s *cache.Sim, src, dst cache.Mat)) int64 {
		s := cache.New(level)
		ms := cache.NewMats([2]int{n, n}, [2]int{n, n})
		f(s, ms[0], ms[1])
		return s.Misses(0)
	}
	fmt.Printf("optimal (2n^2/B): %d\n", 2*n*n/level.BWords)
	fmt.Printf("naive:            %d\n", run(cache.TransposeNaive))
	fmt.Printf("blocked(16):      %d\n", run(func(s *cache.Sim, a, b cache.Mat) {
		cache.TransposeBlocked(s, a, b, 16)
	}))
	fmt.Printf("cache-oblivious:  %d\n", run(cache.TransposeCO))
	// Output:
	// optimal (2n^2/B): 2048
	// naive:            17408
	// blocked(16):      2048
	// cache-oblivious:  2048
}
