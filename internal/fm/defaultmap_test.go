package fm

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// randomDAG builds a random layered DAG for property-style checks.
func randomDAG(rng *rand.Rand, nodes int) *Graph {
	b := NewBuilder("rand")
	var ids []NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, b.Input(32))
	}
	for i := 0; i < nodes; i++ {
		nd := 1 + rng.Intn(3)
		deps := make([]NodeID, 0, nd)
		for j := 0; j < nd; j++ {
			deps = append(deps, ids[rng.Intn(len(ids))])
		}
		class := tech.OpAdd
		if rng.Intn(3) == 0 {
			class = tech.OpMul
		}
		ids = append(ids, b.Op(class, 32, deps...))
	}
	b.MarkOutput(ids[len(ids)-1])
	return b.Build()
}

func TestSerialScheduleAlwaysLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tgt := DefaultTarget(4, 4)
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 30+rng.Intn(50))
		sched := SerialSchedule(g, tgt, geom.Pt(1, 1))
		if err := Check(g, sched, tgt); err != nil {
			t.Fatalf("trial %d: serial schedule illegal: %v", trial, err)
		}
		if sched.PlacesUsed() != 1 {
			t.Fatalf("trial %d: serial schedule uses %d places", trial, sched.PlacesUsed())
		}
	}
}

func TestSerialScheduleZeroWire(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(2)), 40)
	tgt := DefaultTarget(4, 4)
	c, err := Evaluate(g, SerialSchedule(g, tgt, geom.Pt(0, 0)), tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.WireEnergy != 0 || c.BitHops != 0 {
		t.Errorf("serial schedule moved data: %v", c)
	}
}

func TestSerialScheduleIsSequential(t *testing.T) {
	// Ops never overlap: total cycles >= sum of op latencies.
	b := NewBuilder("seq")
	x := b.Op(tech.OpMul, 32) // 6 cycles
	y := b.Op(tech.OpMul, 32) // independent, but serial anyway
	z := b.Op(tech.OpAdd, 32, x, y)
	b.MarkOutput(z)
	g := b.Build()
	tgt := DefaultTarget(4, 4)
	c, err := Evaluate(g, SerialSchedule(g, tgt, geom.Pt(0, 0)), tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 6+6+2 {
		t.Errorf("Cycles = %d, want 14 (fully serialized)", c.Cycles)
	}
}

func TestListScheduleAlwaysLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		w, h := 1+rng.Intn(4), 1+rng.Intn(4)
		tgt := DefaultTarget(w, h)
		g := randomDAG(rng, 30+rng.Intn(50))
		sched := ListSchedule(g, tgt)
		if err := Check(g, sched, tgt); err != nil {
			t.Fatalf("trial %d (%dx%d): list schedule illegal: %v", trial, w, h, err)
		}
	}
}

func TestListScheduleNoWorseThanSerial(t *testing.T) {
	// The paper's default-mapper promise: "results no worse than with
	// today's abstractions" — i.e. than the serial projection.
	rng := rand.New(rand.NewSource(13))
	tgt := DefaultTarget(4, 4)
	for trial := 0; trial < 15; trial++ {
		g := randomDAG(rng, 60)
		cs, err := Evaluate(g, SerialSchedule(g, tgt, geom.Pt(0, 0)), tgt, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := Evaluate(g, ListSchedule(g, tgt), tgt, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cl.Cycles > cs.Cycles {
			t.Errorf("trial %d: default mapper (%d cycles) worse than serial (%d)",
				trial, cl.Cycles, cs.Cycles)
		}
	}
}

func TestListScheduleOnUnitGridEqualsPipelinedSerial(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(3)), 30)
	tgt := DefaultTarget(1, 1)
	sched := ListSchedule(g, tgt)
	if err := Check(g, sched, tgt); err != nil {
		t.Fatal(err)
	}
	if sched.PlacesUsed() != 1 {
		t.Errorf("unit grid uses %d places", sched.PlacesUsed())
	}
}

func TestListScheduleParallelizesIndependentWork(t *testing.T) {
	// 8 independent chains on an 8-node grid should run concurrently.
	b := NewBuilder("chains")
	const chains, length = 8, 10
	for c := 0; c < chains; c++ {
		n := b.Op(tech.OpAdd, 32)
		for i := 1; i < length; i++ {
			n = b.Op(tech.OpAdd, 32, n)
		}
		b.MarkOutput(n)
	}
	g := b.Build()
	tgt := DefaultTarget(8, 1)
	cl, err := Evaluate(g, ListSchedule(g, tgt), tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Evaluate(g, SerialSchedule(g, tgt, geom.Pt(0, 0)), tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Serial: 8*10 adds * 2 cycles = 160. Parallel chains: 20 each.
	if cl.Cycles*4 > cs.Cycles {
		t.Errorf("independent chains barely sped up: %d vs serial %d", cl.Cycles, cs.Cycles)
	}
	if cl.PlacesUsed < chains/2 {
		t.Errorf("list schedule used only %d places", cl.PlacesUsed)
	}
}
