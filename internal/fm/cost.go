package fm

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/trace"
)

// Cost prices a mapped computation. "This model makes it possible to
// write algorithms (function + mapping) with predictable execution time
// and energy because communication — the major source of delay and
// energy consumption — is made explicit."
type Cost struct {
	// Cycles is the makespan in target cycles: the cycle after the last
	// value (including in-flight messages to consumers) exists.
	Cycles int64
	// TimePS is Cycles converted to picoseconds.
	TimePS float64
	// EnergyFJ is the total energy: compute + wire + off-chip input load.
	EnergyFJ float64
	// ComputeEnergy, WireEnergy, OffChipEnergy break EnergyFJ down.
	ComputeEnergy, WireEnergy, OffChipEnergy float64
	// BitHops is total payload bits weighted by hops travelled.
	BitHops int64
	// Messages is the number of distinct value movements (one per
	// producer/destination pair): the on-chip analog of the alpha term in
	// distributed cost models. Yelick: communication avoidance means
	// "reducing both data movement volume and number of distinct events".
	Messages int64
	// PeakWordsPerNode is the largest memory-tile footprint of any node.
	PeakWordsPerNode int
	// PlacesUsed is the number of distinct grid points touched.
	PlacesUsed int
	// Ops is the number of operations executed.
	Ops int
}

// CommFraction returns the fraction of energy spent moving data.
func (c Cost) CommFraction() float64 {
	if c.EnergyFJ == 0 {
		return 0
	}
	return (c.WireEnergy + c.OffChipEnergy) / c.EnergyFJ
}

// String implements fmt.Stringer.
func (c Cost) String() string {
	return fmt.Sprintf("cycles=%d time=%.0fps energy=%.0ffJ (compute=%.0f wire=%.0f offchip=%.0f) bit-hops=%d msgs=%d peak-mem=%dw places=%d",
		c.Cycles, c.TimePS, c.EnergyFJ, c.ComputeEnergy, c.WireEnergy, c.OffChipEnergy,
		c.BitHops, c.Messages, c.PeakWordsPerNode, c.PlacesUsed)
}

// TrafficFrom returns the bit-hops of all transfers whose PRODUCER
// satisfies from, with the same per-distinct-(producer, destination)
// dedup rule Evaluate charges. It attributes a mapping's communication
// to tensors: e.g. in a weight-stationary convolution the weight inputs
// contribute zero, in an output-stationary one the partial sums do.
func TrafficFrom(g *Graph, sched Schedule, from func(NodeID) bool) int64 {
	if len(sched) != g.NumNodes() {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("fm: schedule has %d assignments for %d nodes", len(sched), g.NumNodes()))
	}
	type flow struct {
		producer NodeID
		dst      geom.Point
	}
	seen := make(map[flow]struct{})
	var total int64
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		if g.IsInput(id) {
			continue
		}
		dst := sched[id].Place
		for _, p := range g.Deps(id) {
			if !from(p) {
				continue
			}
			hops := sched[p].Place.Manhattan(dst)
			if hops == 0 {
				continue
			}
			f := flow{p, dst}
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			total += int64(g.Bits(p)) * int64(hops)
		}
	}
	return total
}

// EvalOptions tunes Evaluate.
type EvalOptions struct {
	// ChargeInputLoad charges each input node one off-chip access (the
	// data has to come from somewhere) and requires inputs to be
	// available no earlier than the off-chip latency.
	ChargeInputLoad bool
	// Trace, if non-nil, receives one event per op and per value movement
	// (times in ps, converted from cycles).
	Trace *trace.Trace
	// SkipCheck evaluates cost without re-verifying legality. Search uses
	// this after checking candidates once.
	SkipCheck bool
}

// Evaluate checks legality (unless opts.SkipCheck) and prices the mapped
// computation g+sched on tgt.
//
// Communication is charged per distinct (producer, consumer-place) pair:
// a value consumed by several ops at the same place travels there once;
// consumers at distinct places each get their own copy. A consumer
// co-located with the producer is free — locality optimization is exactly
// the art of making this term vanish.
func Evaluate(g *Graph, sched Schedule, tgt Target, opts EvalOptions) (Cost, error) {
	tgt = tgt.withDefaults()
	if !opts.SkipCheck {
		if err := Check(g, sched, tgt); err != nil {
			return Cost{}, err
		}
	} else if err := sched.validateLen(g); err != nil {
		return Cost{}, err
	}

	var c Cost
	var makespan int64

	if opts.ChargeInputLoad {
		offCycles := tgt.OffChipCycles()
		for _, in := range g.Inputs() {
			if sched[in].Time < offCycles {
				return Cost{}, fmt.Errorf("fm: input node %d available at cycle %d, before off-chip load completes at %d",
					in, sched[in].Time, offCycles)
			}
			bits := g.Bits(in)
			c.OffChipEnergy += tgt.Tech.OffChipEnergy(bits)
			if opts.Trace.Enabled() {
				opts.Trace.Add(trace.Event{
					Kind:  trace.KindOffChip,
					Start: float64(sched[in].Time-offCycles) * tgt.CyclePS,
					End:   float64(sched[in].Time) * tgt.CyclePS,
					Place: sched[in].Place, Energy: tgt.Tech.OffChipEnergy(bits), Bits: bits,
				})
			}
		}
	}

	// Compute energy and completion times.
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		fin := finishTime(g, sched, tgt, id)
		if fin > makespan {
			makespan = fin
		}
		if g.IsInput(id) {
			continue
		}
		c.Ops++
		e := tgt.Tech.OpEnergy(g.Op(id), g.Bits(id))
		c.ComputeEnergy += e
		if opts.Trace.Enabled() {
			opts.Trace.Add(trace.Event{
				Kind:  trace.KindCompute,
				Start: float64(sched[id].Time) * tgt.CyclePS,
				End:   float64(fin) * tgt.CyclePS,
				Place: sched[id].Place, Energy: e, Bits: g.Bits(id), Tag: g.Label(id),
			})
		}
	}

	// Wire energy: one transfer per distinct (producer, destination place),
	// accumulated producer-major in the canonical order of flows.go — a
	// per-producer partial summed in consumer first-appearance order, the
	// partials added in producer-ID order. DeltaEvaluator recomputes only
	// the partials a move touches and re-adds them in the same order, so
	// its totals stay bit-identical to this loop.
	cons, consOff := consumerLists(g)
	placeOf := func(n NodeID) geom.Point { return sched[n].Place }
	dsts := make([]geom.Point, 0, maxFanout(consOff))
	for p := 0; p < g.NumNodes(); p++ {
		clist := cons[consOff[p]:consOff[p+1]]
		if len(clist) == 0 {
			continue
		}
		w, bh, msgs, maxT := producerFlows(g, tgt, NodeID(p), clist, placeOf, dsts[:0])
		c.WireEnergy += w
		c.BitHops += bh
		c.Messages += msgs
		if maxT > 0 {
			if arrive := finishTime(g, sched, tgt, NodeID(p)) + maxT; arrive > makespan {
				makespan = arrive
			}
		}
	}
	if opts.Trace.Enabled() {
		// Trace events keep the historical (consumer, dependency) emission
		// order so space-time diagrams render unchanged; the cost totals
		// above come from the canonical producer-major accumulation.
		type flow struct {
			producer NodeID
			dst      geom.Point
		}
		seen := make(map[flow]struct{})
		for n := 0; n < g.NumNodes(); n++ {
			id := NodeID(n)
			if g.IsInput(id) {
				continue
			}
			dst := sched[id].Place
			for _, p := range g.Deps(id) {
				hops := sched[p].Place.Manhattan(dst)
				if hops == 0 {
					continue
				}
				f := flow{p, dst}
				if _, dup := seen[f]; dup {
					continue
				}
				seen[f] = struct{}{}
				bits := g.Bits(p)
				depart := finishTime(g, sched, tgt, p)
				opts.Trace.Add(trace.Event{
					Kind:  trace.KindWire,
					Start: float64(depart) * tgt.CyclePS,
					End:   float64(depart+tgt.TransitCycles(hops)) * tgt.CyclePS,
					Place: sched[p].Place, Dst: dst, Energy: tgt.WireEnergy(bits, hops), Bits: bits,
				})
			}
		}
	}

	// Peak per-node storage (same accounting as the legality check).
	for _, evs := range storageEvents(g, sched, tgt) {
		if peak, _ := sweepPeak(evs); peak > c.PeakWordsPerNode {
			c.PeakWordsPerNode = peak
		}
	}

	c.Cycles = makespan
	c.TimePS = float64(makespan) * tgt.CyclePS
	c.EnergyFJ = c.ComputeEnergy + c.WireEnergy + c.OffChipEnergy
	c.PlacesUsed = sched.PlacesUsed()
	return c, nil
}
