// Package geom provides the spatial vocabulary for the space-time mapping
// model: points on a processor grid, rectangles, and the distance metrics
// that determine communication cost.
//
// The Function & Mapping (F&M) model discretizes location onto a grid of
// two or more dimensions; every operation is assigned a grid point and
// every value a path between grid points. Wire energy and delay are linear
// in routed distance, so the metric chosen here (Manhattan for XY-routed
// meshes) feeds directly into the cost model.
package geom

import "fmt"

// Point is a location on the processor grid.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p+q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p-q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Manhattan returns the L1 distance between p and q, in grid hops.
// XY dimension-ordered routing on a mesh routes exactly this many hops.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Chebyshev returns the L-infinity distance between p and q.
func (p Point) Chebyshev(q Point) int {
	dx, dy := abs(p.X-q.X), abs(p.Y-q.Y)
	if dx > dy {
		return dx
	}
	return dy
}

// In reports whether p lies inside r.
func (p Point) In(r Rect) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Rect is a half-open rectangle [Min.X,Max.X) x [Min.Y,Max.Y) on the grid.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle with the given corner and size.
func NewRect(x, y, w, h int) Rect {
	return Rect{Min: Pt(x, y), Max: Pt(x+w, y+h)}
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("[%v-%v)", r.Min, r.Max) }

// W returns the rectangle's width.
func (r Rect) W() int { return r.Max.X - r.Min.X }

// H returns the rectangle's height.
func (r Rect) H() int { return r.Max.Y - r.Min.Y }

// Area returns the number of grid points inside r.
func (r Rect) Area() int {
	if r.W() <= 0 || r.H() <= 0 {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether r contains no grid points.
func (r Rect) Empty() bool { return r.Area() == 0 }

// Intersect returns the largest rectangle contained in both r and s.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Pt(max(r.Min.X, s.Min.X), max(r.Min.Y, s.Min.Y)),
		Max: Pt(min(r.Max.X, s.Max.X), min(r.Max.Y, s.Max.Y)),
	}
	if out.W() <= 0 || out.H() <= 0 {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Min: Pt(min(r.Min.X, s.Min.X), min(r.Min.Y, s.Min.Y)),
		Max: Pt(max(r.Max.X, s.Max.X), max(r.Max.Y, s.Max.Y)),
	}
}

// Grid describes a W x H processor grid with a fixed physical pitch
// between adjacent nodes. It converts between linear node IDs (row-major)
// and grid coordinates, and exposes physical distances in millimetres.
type Grid struct {
	Width, Height int
	// PitchMM is the physical distance between adjacent grid nodes in
	// millimetres. Wire cost between nodes is PitchMM * hop count.
	PitchMM float64
}

// NewGrid returns a grid with the given dimensions and node pitch.
func NewGrid(w, h int, pitchMM float64) Grid {
	if w <= 0 || h <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("geom: invalid grid %dx%d", w, h))
	}
	if pitchMM <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("geom: invalid pitch %g", pitchMM))
	}
	return Grid{Width: w, Height: h, PitchMM: pitchMM}
}

// Nodes returns the number of grid nodes.
func (g Grid) Nodes() int { return g.Width * g.Height }

// Bounds returns the rectangle covering the whole grid.
func (g Grid) Bounds() Rect { return NewRect(0, 0, g.Width, g.Height) }

// Contains reports whether p is a valid node of the grid.
func (g Grid) Contains(p Point) bool { return p.In(g.Bounds()) }

// ID returns the row-major linear ID of p. It panics if p is outside the
// grid, because a silently wrapped ID would corrupt cost accounting.
func (g Grid) ID(p Point) int {
	if !g.Contains(p) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		//lint:allow alloc(unreachable in a correct run: the Sprintf only feeds a caller-bug panic)
		panic(fmt.Sprintf("geom: point %v outside grid %dx%d", p, g.Width, g.Height))
	}
	return p.Y*g.Width + p.X
}

// At returns the point with linear ID id.
func (g Grid) At(id int) Point {
	if id < 0 || id >= g.Nodes() {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		//lint:allow alloc(unreachable in a correct run: the Sprintf only feeds a caller-bug panic)
		panic(fmt.Sprintf("geom: node id %d outside grid %dx%d", id, g.Width, g.Height))
	}
	return Pt(id%g.Width, id/g.Width)
}

// DistMM returns the physical routed distance between p and q in
// millimetres, assuming dimension-ordered (Manhattan) routing.
func (g Grid) DistMM(p, q Point) float64 {
	return float64(p.Manhattan(q)) * g.PitchMM
}

// DiagonalMM returns the physical Manhattan distance from corner to corner
// of the grid: the longest route any on-chip message can take.
func (g Grid) DiagonalMM() float64 {
	return g.DistMM(Pt(0, 0), Pt(g.Width-1, g.Height-1))
}

// SideMM returns the physical extent of the grid's longer side.
func (g Grid) SideMM() float64 {
	side := g.Width
	if g.Height > side {
		side = g.Height
	}
	return float64(side-1) * g.PitchMM
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
