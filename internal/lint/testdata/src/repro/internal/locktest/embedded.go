package locktest

import "sync"

// embedded exercises the embedded-mutex form: the guard's "name" is the
// embedded field (Mutex) and the lock call is e.Lock() on the base
// value itself.
type embedded struct {
	sync.Mutex
	n int // guarded by Mutex
}

func (e *embedded) inc() {
	e.Lock()
	e.n++
	e.Unlock()
}

func (e *embedded) badInc() {
	e.n++ // want "e.n is guarded by Mutex, which badInc does not hold"
}

type stats struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func newStats() *stats {
	return &stats{m: map[string]int{}}
}

func (s *stats) get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

func (s *stats) set(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

func (s *stats) badGet(k string) int {
	return s.m[k] // want "s.m is guarded by mu, which badGet does not hold"
}
