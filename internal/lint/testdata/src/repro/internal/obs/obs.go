// Fake obs package for the obsnoop fixture: same import path and type
// names as the real repro/internal/obs, minimal bodies. The analyzer
// matches on (package path, type name), so this stand-in exercises it
// without dragging the real package's dependencies into the fixture.
package obs

type Registry struct{ n int }

func New() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge     { return &Gauge{} }

type Counter struct{ n int }

func (c *Counter) Inc() {}

type Gauge struct{ n float64 }

func (g *Gauge) Set(v float64) {}

type Histogram struct{ n int }

type Timer struct{ h *Histogram }
