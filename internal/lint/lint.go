// Package lint holds repolint's analyzers: static checks that encode
// the repo's load-bearing invariants so CI rejects regressions before
// any runtime test could observe them.
//
// The paper's F&M argument is that cost becomes predictable only when
// the rules are explicit and checkable. The repo applies the same
// stance to itself. Seven contracts hold everything together: four
// intra-file ones — bit-exact determinism across worker counts,
// error-returning library APIs, a nil-registry observability no-op,
// and no stray printing from library code — and three interprocedural
// ones — allocation-free //lint:hotpath call graphs (hotalloc),
// context plumbing through the request paths (ctxflow), and
// "guarded by mu" field discipline with no copied locks (lockcheck).
// Each is enforced here as a compile-time check backed by (not
// replaced by) the runtime tests listed in DESIGN.md.
//
// Analyzers are written against internal/lint/analysis, an
// API-compatible subset of golang.org/x/tools/go/analysis (see that
// package's doc for why), and driven by cmd/repolint.
package lint

import (
	"go/ast"
	"sort"

	"repro/internal/lint/analysis"
)

// All returns every repolint analyzer in deterministic order.
func All() []*analysis.Analyzer {
	as := []*analysis.Analyzer{Determinism, NoPanic, ObsNoop, PrintBan, Hotalloc, Ctxflow, Lockcheck}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// internalPackage reports whether path is a library package subject to
// the repo's internal-code invariants (nopanic, printban).
func internalPackage(path string) bool {
	const prefix = "repro/internal/"
	return len(path) > len(prefix) && path[:len(prefix)] == prefix
}

// exportedFunc reports whether decl is part of the package's exported
// API: an exported top-level function, or an exported method on an
// exported receiver type.
func exportedFunc(decl *ast.FuncDecl) bool {
	if !decl.Name.IsExported() {
		return false
	}
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(receiverTypeName(decl.Recv.List[0].Type))
}

// receiverTypeName unwraps a method receiver type expression ("T",
// "*T", "T[P]") to the base type name.
func receiverTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
