// Package leaktest is a stdlib-only goroutine-leak harness: the
// dynamic complement of the static lock and context analyzers in
// internal/lint. A test package wires it in one line —
//
//	func TestMain(m *testing.M) { leaktest.Main(m) }
//
// — and every `go test` run of that package fails if goroutines
// outlive the tests. Individual tests can also scope the check with
// Check(t), which snapshots at registration and verifies at cleanup.
//
// Detection parses runtime.Stack(all=true), filters the runtime's and
// the testing framework's own goroutines, and retries until a deadline
// so goroutines that are mid-exit (a worker between its last send and
// its return, say) are not reported. What remains after the deadline is
// a real leak: something started a goroutine and lost track of it.
package leaktest

import (
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// retryDeadline bounds how long verification waits for in-flight
// goroutines to finish before declaring a leak. Generous relative to
// any legitimate shutdown in this repo (Close paths are synchronous),
// tight enough to not stall CI on a real leak.
const retryDeadline = 5 * time.Second

// Goroutine is one parsed stack from a runtime.Stack snapshot.
type Goroutine struct {
	ID    int
	State string // the bracketed state: "running", "chan receive", ...
	Stack string // the full text block, header included
}

var headerRE = regexp.MustCompile(`^goroutine (\d+) \[([^\]]*)\]`)

// Snapshot parses the current full goroutine dump. The calling
// goroutine is included (callers filter it by stack content, not ID, so
// snapshots taken on different goroutines compare cleanly).
func Snapshot() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var gs []Goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		m := headerRE.FindStringSubmatch(block)
		if m == nil {
			continue
		}
		id, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		gs = append(gs, Goroutine{ID: id, State: m[2], Stack: block})
	}
	return gs
}

// ignoreSubstrings marks goroutines owned by the runtime, the testing
// framework, or this package itself. A stack containing any of these is
// never a leak the tested code is responsible for.
var ignoreSubstrings = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests(",
	"testing.runFuzzing(",
	"runtime.goexit0(",
	"runtime.gcBgMarkWorker(",
	"runtime.bgsweep(",
	"runtime.bgscavenge(",
	"runtime.forcegchelper(",
	"runtime.runfinq(",
	"runtime.ReadTrace(",
	"runtime/trace.Start",
	"signal.signal_recv(",
	"signal.loop(",
	"runtime.ensureSigM(",
	"leaktest.Snapshot(",
	"leaktest.interesting(",
}

// interesting filters a snapshot down to goroutines the tested code
// must answer for.
func interesting(gs []Goroutine) []Goroutine {
	var out []Goroutine
	for _, g := range gs {
		if ignored(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

func ignored(g Goroutine) bool {
	for _, s := range ignoreSubstrings {
		if strings.Contains(g.Stack, s) {
			return true
		}
	}
	return false
}

// retryUntilNone polls snapshots until no interesting goroutine
// remains or the deadline passes, returning the survivors. Polling
// (rather than a single sample) keeps goroutines that are mid-return
// from producing flaky reports.
func retryUntilNone(deadline time.Duration) []Goroutine {
	//lint:allow nondeterminism(wall-clock deadline for leak detection: the retry loop only decides when to stop sampling, never what a test computes)
	stop := time.Now().Add(deadline)
	for {
		leaked := interesting(Snapshot())
		if len(leaked) == 0 {
			return nil
		}
		//lint:allow nondeterminism(wall-clock deadline for leak detection: the retry loop only decides when to stop sampling, never what a test computes)
		if time.Now().After(stop) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func report(leaked []Goroutine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "leaktest: %d goroutine(s) leaked:\n", len(leaked))
	for _, g := range leaked {
		fmt.Fprintf(&b, "\n%s\n", g.Stack)
	}
	return b.String()
}

// Main wraps testing.M.Run with a whole-package leak check: after the
// tests pass, any goroutine they left behind fails the run. Wire it as
// the package's TestMain. A failing test run reports its own exit code
// untouched — the leak check only adds a failure mode to green runs, so
// it never masks the original error.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := retryUntilNone(retryDeadline); len(leaked) > 0 {
			fmt.Fprint(os.Stderr, report(leaked))
			code = 1
		}
	}
	os.Exit(code)
}

// Check registers a leak verification for the current test: every
// goroutine visible at t's cleanup that was not visible now (and is not
// runtime- or framework-owned) fails t. Use it in tests that start
// servers or pools, where a leak should be pinned to the test that
// caused it rather than to the package run.
func Check(t testing.TB) {
	t.Helper()
	before := make(map[int]bool)
	for _, g := range Snapshot() {
		before[g.ID] = true
	}
	t.Cleanup(func() {
		//lint:allow nondeterminism(wall-clock deadline for leak detection: the retry loop only decides when to stop sampling, never what a test computes)
		stop := time.Now().Add(retryDeadline)
		for {
			var leaked []Goroutine
			for _, g := range interesting(Snapshot()) {
				if !before[g.ID] {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			//lint:allow nondeterminism(wall-clock deadline for leak detection: the retry loop only decides when to stop sampling, never what a test computes)
			if time.Now().After(stop) {
				t.Error(report(leaked))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
