// Package cache simulates the ideal-cache model behind Blelloch's point
// that "it is easy to add a one level cache to the RAM model, and
// hundreds of algorithms have been developed in such a model. When
// algorithms developed in this model satisfy a property of being cache
// oblivious, they will also work effectively on a multilevel cache."
//
// A Sim is a stack of fully-associative LRU caches with parameters
// (M words of capacity, B words per line). Algorithms are driven as
// address traces; the simulator counts misses at every level at once, so
// a cache-oblivious algorithm can be shown near-optimal at all levels
// from one run while a tuned-blocked algorithm is optimal only at the
// level it was tuned for.
package cache

import (
	"container/list"
	"fmt"
)

// Level parameterizes one cache level in the ideal-cache model.
type Level struct {
	// MWords is the capacity in words; BWords the line size in words.
	MWords, BWords int
}

// Lines returns the number of lines the level holds.
func (l Level) Lines() int { return l.MWords / l.BWords }

// Validate reports an error for inconsistent parameters (the ideal-cache
// model requires a "tall cache": at least a few lines).
func (l Level) Validate() error {
	if l.BWords <= 0 || l.MWords <= 0 {
		return fmt.Errorf("cache: non-positive level %+v", l)
	}
	if l.Lines() < 2 {
		return fmt.Errorf("cache: level %+v holds %d lines; need >= 2", l, l.Lines())
	}
	return nil
}

// lru is one fully-associative LRU cache over line addresses.
type lru struct {
	level Level
	elems map[int64]*list.Element
	order *list.List // front = most recent
}

func newLRU(l Level) *lru {
	return &lru{level: l, elems: make(map[int64]*list.Element), order: list.New()}
}

// access returns true on a hit.
func (c *lru) access(line int64) bool {
	if e, ok := c.elems[line]; ok {
		c.order.MoveToFront(e)
		return true
	}
	c.elems[line] = c.order.PushFront(line)
	if c.order.Len() > c.level.Lines() {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.elems, last.Value.(int64))
	}
	return false
}

// Sim drives an address trace through a set of cache levels.
type Sim struct {
	levels   []*lru
	misses   []int64
	accesses int64
}

// New returns a simulator with the given levels. At least one level is
// required; each is validated.
func New(levels ...Level) *Sim {
	if len(levels) == 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic("cache: simulator needs at least one level")
	}
	s := &Sim{}
	for _, l := range levels {
		if err := l.Validate(); err != nil {
			//lint:allow panic(constructor guard: cache levels are static experiment configuration and an invalid level is a caller bug)
			panic(err.Error())
		}
		s.levels = append(s.levels, newLRU(l))
	}
	s.misses = make([]int64, len(levels))
	return s
}

// Access touches the word at addr (reads and writes cost the same in the
// ideal-cache model). Every level observes every access — the levels are
// independent models of the same trace, not an inclusive hierarchy.
func (s *Sim) Access(addr int64) {
	if addr < 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("cache: negative address %d", addr))
	}
	s.accesses++
	for i, c := range s.levels {
		if !c.access(addr / int64(c.level.BWords)) {
			s.misses[i]++
		}
	}
}

// AccessRange touches n consecutive words starting at addr (a sequential
// scan), the pattern every cache rewards.
func (s *Sim) AccessRange(addr int64, n int) {
	for i := 0; i < n; i++ {
		s.Access(addr + int64(i))
	}
}

// Accesses returns the total number of word accesses.
func (s *Sim) Accesses() int64 { return s.accesses }

// Misses returns the miss count at level i.
func (s *Sim) Misses(i int) int64 { return s.misses[i] }

// Levels returns the configured levels.
func (s *Sim) Levels() []Level {
	out := make([]Level, len(s.levels))
	for i, c := range s.levels {
		out[i] = c.level
	}
	return out
}

// Reset clears contents and counters.
func (s *Sim) Reset() {
	for i, c := range s.levels {
		s.levels[i] = newLRU(c.level)
		s.misses[i] = 0
	}
	s.accesses = 0
}

// MissRate returns misses/accesses at level i (0 for an empty trace).
func (s *Sim) MissRate(i int) float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.misses[i]) / float64(s.accesses)
}
