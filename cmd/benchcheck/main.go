// Command benchcheck validates a panelbench JSON report: right schema,
// a well-formed entry for every registered experiment, consistent
// totals. CI runs it against the report artifact so a refactor that
// silently drops an experiment (or emits an empty report) fails the
// build even when every remaining experiment passes.
//
// With -baseline it additionally compares the report's metrics against
// a committed baseline report (BENCH_panel.json): every gating metric
// (rel_tol > 0) shared by both runs must not regress past its tolerance
// in its Better direction. Improvements never fail, so the committed
// baseline is a performance floor — the CI perf trajectory can only
// ratchet up.
//
// Usage:
//
//	panelbench -json report.json && benchcheck report.json
//	benchcheck -require-pass report.json     # also fail on any FAIL verdict
//	benchcheck -baseline BENCH_panel.json report.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	requirePass := flag.Bool("require-pass", false, "fail if any experiment's verdict is FAIL, not just on malformed reports")
	baseline := flag.String("baseline", "", "compare the report's metrics against this committed baseline report; fail on any gated regression")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-require-pass] [-baseline old.json] report.json")
		os.Exit(2)
	}
	path := flag.Arg(0)
	rep, err := readReport(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	if err := rep.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %s: schema %s, %d experiments, %d passed, %d failed\n",
		path, rep.Schema, len(rep.Experiments), rep.Passed, rep.Failed)

	exit := 0
	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		if base.Schema != rep.Schema {
			fmt.Fprintf(os.Stderr, "benchcheck: baseline schema %s, report schema %s\n", base.Schema, rep.Schema)
			os.Exit(1)
		}
		comparisons := rep.CompareToBaseline(base)
		if len(comparisons) == 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: no shared metrics between %s and %s\n", *baseline, path)
			os.Exit(1)
		}
		for _, c := range comparisons {
			status := "ok"
			if c.Regressed {
				status = "REGRESSED"
				exit = 1
			} else if c.Metric.RelTol <= 0 {
				status = "info"
			}
			fmt.Printf("benchcheck: %s %s: baseline %g, now %g %s (%s)\n",
				c.Experiment, c.Metric.Name, c.Baseline, c.Current, c.Metric.Unit, status)
		}
	}
	if *requirePass && rep.Failed > 0 {
		for _, e := range rep.Experiments {
			if !e.Pass {
				fmt.Fprintf(os.Stderr, "benchcheck: %s (%s) failed\n", e.ID, e.Name)
			}
		}
		exit = 1
	}
	os.Exit(exit)
}

func readReport(path string) (experiments.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return experiments.Report{}, err
	}
	defer f.Close()
	return experiments.ReadReport(f)
}
