package experiments

import (
	"fmt"

	"repro/internal/algorithms/editdist"
	"repro/internal/fm"
	"repro/internal/stats"
)

// E3 reproduces the paper's worked example: the edit-distance recurrence
// with "Map H(i,j) at i%P time floor(i/P)*N+j" placed on a linear array
// of P processors as marching anti-diagonals. The mapped cost model shows
// (a) the mapping is legal, (b) runtime falls roughly as 1/P once P
// clears the transit/compute crossover, (c) traffic is nearest-neighbour
// so wire energy stays a small constant per cell, and (d) the serial
// projection moves nothing but is N^2 slower.
func E3() Result {
	const n = 64
	r := make([]byte, n)
	q := make([]byte, n)
	tgt := fm.DefaultTarget(16, 1)
	tgt.Grid.PitchMM = 0.1 // sub-mm grid granularity, as the paper maps
	tgt.MemWordsPerNode = 1 << 22

	serial, err := editdist.SerialMapping(r, q, tgt)
	if err != nil {
		return failure("E3", err)
	}

	t := stats.NewTable(fmt.Sprintf("E3: edit distance N=%d, anti-diagonal mapping", n),
		"P", "cycles", "speedup", "paper speedup ~P", "bit-hops/cell", "within")
	t.AddRow(1, serial.Cycles, 1.0, 1.0, 0.0, verdict(true))
	pass := true
	prev := serial.Cycles
	for _, p := range []int{4, 8, 16} {
		c, err := editdist.PaperMapping(r, q, p, tgt)
		if err != nil {
			return failure("E3", err)
		}
		speedup := float64(serial.Cycles) / float64(c.Cycles)
		perCell := float64(c.BitHops) / float64(n*n)
		// Shape check: monotone improvement, and at least half the ideal
		// P-fold once past the crossover (the stride eats a constant).
		ok := c.Cycles < prev && speedup > float64(p)/4
		pass = pass && ok
		prev = c.Cycles
		t.AddRow(p, c.Cycles, speedup, float64(p), perCell, verdict(ok))
	}
	t.AddNote("speedup is measured against the zero-communication serial mapping; the stride (op+hop latency) bounds it away from ideal P")

	return Result{
		ID:    "E3",
		Claim: "the F&M anti-diagonal mapping runs the DP recurrence on P processors with nearest-neighbour traffic and ~P-fold speedup",
		Table: t,
		Pass:  pass,
		Notes: []string{
			"the paper's time expression is read as a per-processor step counter; the schedule adds the i%P wavefront skew to make causality explicit in global cycles",
		},
	}
}

func failure(id string, err error) Result {
	t := stats.NewTable(id+": failed", "error")
	t.AddRow(err.Error())
	return Result{ID: id, Claim: "(failed)", Table: t, Pass: false}
}
