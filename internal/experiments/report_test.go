package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBuildReportValidatesAndRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	rep := BuildReport()
	if err := rep.Validate(); err != nil {
		t.Fatalf("freshly built report invalid: %v", err)
	}
	if len(rep.Experiments) != len(All()) {
		t.Fatalf("report has %d experiments, registry has %d", len(rep.Experiments), len(All()))
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	if back.Passed != rep.Passed || back.Failed != rep.Failed {
		t.Fatalf("round trip changed totals: %d/%d vs %d/%d",
			back.Passed, back.Failed, rep.Passed, rep.Failed)
	}
}

func TestValidateRejectsBrokenReports(t *testing.T) {
	base := func() Report {
		var exps []ReportEntry
		passed := 0
		for _, e := range All() {
			exps = append(exps, ReportEntry{
				ID: e.ID, Name: e.Name, Claim: "c", Pass: true,
				Table: TableJSON{Title: "t", Headers: []string{"a"}, Rows: [][]string{{"1"}}},
			})
			passed++
		}
		return Report{Schema: ReportSchema, Experiments: exps, Passed: passed}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base fixture invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "panelbench/v0" }, "schema"},
		{"empty", func(r *Report) { r.Experiments = nil }, "empty"},
		{"missing experiment", func(r *Report) {
			r.Experiments = r.Experiments[1:]
			r.Passed--
		}, "missing E1"},
		{"duplicate", func(r *Report) {
			r.Experiments[1] = r.Experiments[0]
		}, "duplicate"},
		{"empty table", func(r *Report) { r.Experiments[0].Table.Rows = nil }, "empty table"},
		{"ragged row", func(r *Report) {
			r.Experiments[0].Table.Rows = [][]string{{"1", "2"}}
		}, "cells"},
		{"bad totals", func(r *Report) { r.Passed++ }, "totals"},
		{"nameless metric", func(r *Report) {
			r.Experiments[0].Metrics = []Metric{{Value: 1, Unit: "x", Better: "higher"}}
		}, "no name"},
		{"duplicate metric", func(r *Report) {
			m := Metric{Name: "m", Value: 1, Unit: "x", Better: "higher"}
			r.Experiments[0].Metrics = []Metric{m, m}
		}, "duplicate metric"},
		{"bad direction", func(r *Report) {
			r.Experiments[0].Metrics = []Metric{{Name: "m", Value: 1, Unit: "x", Better: "sideways"}}
		}, "direction"},
		{"negative tolerance", func(r *Report) {
			r.Experiments[0].Metrics = []Metric{{Name: "m", Value: 1, Unit: "x", Better: "lower", RelTol: -0.1}}
		}, "tolerance"},
		{"non-finite metric", func(r *Report) {
			r.Experiments[0].Metrics = []Metric{{Name: "m", Value: math.Inf(1), Unit: "x", Better: "higher"}}
		}, "non-finite"},
	}
	for _, c := range cases {
		r := base()
		c.mutate(&r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a broken report", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestMetricRegressed(t *testing.T) {
	hi := Metric{Name: "m", Better: "higher", RelTol: 0.2}
	lo := Metric{Name: "m", Better: "lower", RelTol: 0.2}
	info := Metric{Name: "m", Better: "higher"} // RelTol 0
	cases := []struct {
		name      string
		m         Metric
		base, cur float64
		want      bool
	}{
		{"higher: within band", hi, 10, 8.5, false},
		{"higher: at band edge", hi, 10, 8, false},
		{"higher: past band", hi, 10, 7.9, true},
		{"higher: improvement", hi, 10, 100, false},
		{"lower: within band", lo, 10, 11.5, false},
		{"lower: past band", lo, 10, 12.1, true},
		{"lower: improvement", lo, 10, 1, false},
		{"informational never regresses", info, 10, 0.1, false},
	}
	for _, c := range cases {
		if got := c.m.Regressed(c.base, c.cur); got != c.want {
			t.Errorf("%s: Regressed(%g, %g) = %v, want %v", c.name, c.base, c.cur, got, c.want)
		}
	}
}

func TestCompareToBaseline(t *testing.T) {
	mk := func(speedup, rate float64) Report {
		return Report{Schema: ReportSchema, Experiments: []ReportEntry{{
			ID: "E20",
			Metrics: []Metric{
				{Name: "speedup", Value: speedup, Unit: "ratio", Better: "higher", RelTol: 0.35},
				{Name: "rate", Value: rate, Unit: "moves/sec", Better: "higher"},
			},
		}}}
	}
	base := mk(12, 60000)

	// Within tolerance and informational drop: nothing regresses.
	cmps := mk(10, 100).CompareToBaseline(base)
	if len(cmps) != 2 {
		t.Fatalf("%d comparisons, want 2", len(cmps))
	}
	for _, c := range cmps {
		if c.Regressed {
			t.Errorf("%s %s flagged: baseline %g, current %g, tol %g",
				c.Experiment, c.Metric.Name, c.Baseline, c.Current, c.Metric.RelTol)
		}
	}

	// The gated ratio past its band must regress.
	cmps = mk(5, 60000).CompareToBaseline(base)
	found := false
	for _, c := range cmps {
		if c.Metric.Name == "speedup" && c.Regressed {
			found = true
		}
	}
	if !found {
		t.Error("gated speedup 12 -> 5 not flagged as a regression")
	}

	// Metrics missing from the baseline are skipped, not failed.
	extra := mk(12, 60000)
	extra.Experiments[0].Metrics = append(extra.Experiments[0].Metrics,
		Metric{Name: "brand_new", Value: 1, Unit: "x", Better: "higher", RelTol: 0.5})
	cmps = extra.CompareToBaseline(base)
	if len(cmps) != 2 {
		t.Fatalf("new metric not skipped: %d comparisons, want 2", len(cmps))
	}
}

// TestE20TrajectoriesIdentical pins the half of E20's claim that must
// hold on every host: delta-on and delta-off searches end bit-identical.
// (The speedup half is wall-clock and asserted by E20 itself.)
func TestE20TrajectoriesIdentical(t *testing.T) {
	r := E20()
	for _, row := range r.Table.RowStrings() {
		for _, cell := range row {
			if strings.Contains(cell, "MISMATCH") {
				t.Fatalf("delta and full trajectories diverged:\n%v", row)
			}
		}
	}
}
