package workspan

import (
	"fmt"
	"sort"
)

// For executes body over [lo, hi) by recursive halving, running segments
// of at most grain iterations sequentially. Work W = O(hi-lo), span
// D = O(log((hi-lo)/grain)) + grain.
func For(c *Ctx, lo, hi, grain int, body func(lo, hi int)) {
	if grain <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("workspan: invalid grain %d", grain))
	}
	if hi-lo <= grain {
		if lo < hi {
			body(lo, hi)
		}
		return
	}
	mid := lo + (hi-lo)/2
	c.Do(
		func(c *Ctx) { For(c, lo, mid, grain, body) },
		func(c *Ctx) { For(c, mid, hi, grain, body) },
	)
}

// MapInto writes f(xs[i]) to out[i] in parallel. Work O(n), span O(log n).
func MapInto[T, U any](c *Ctx, xs []T, out []U, grain int, f func(T) U) {
	if len(out) != len(xs) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("workspan: MapInto output length %d != input %d", len(out), len(xs)))
	}
	For(c, 0, len(xs), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(xs[i])
		}
	})
}

// Reduce combines xs with an associative op and identity id by divide and
// conquer. Work O(n), span O(log n * (grain + overhead)).
func Reduce[T any](c *Ctx, xs []T, grain int, id T, op func(T, T) T) T {
	if grain <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("workspan: invalid grain %d", grain))
	}
	if len(xs) <= grain {
		acc := id
		for _, x := range xs {
			acc = op(acc, x)
		}
		return acc
	}
	mid := len(xs) / 2
	var l, r T
	c.Do(
		func(c *Ctx) { l = Reduce(c, xs[:mid], grain, id, op) },
		func(c *Ctx) { r = Reduce(c, xs[mid:], grain, id, op) },
	)
	return op(l, r)
}

// Scan writes the inclusive prefix combination of xs into out using the
// two-pass blocked algorithm: parallel per-block sums, a sequential scan
// over the (few) block sums, then a parallel pass rescanning each block
// with its offset. Work O(n), span O(n/blocks + blocks).
func Scan[T any](c *Ctx, xs, out []T, grain int, id T, op func(T, T) T) {
	if len(out) != len(xs) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("workspan: Scan output length %d != input %d", len(out), len(xs)))
	}
	if grain <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("workspan: invalid grain %d", grain))
	}
	n := len(xs)
	if n == 0 {
		return
	}
	blocks := (n + grain - 1) / grain
	sums := make([]T, blocks)
	For(c, 0, blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, xs[i])
			}
			sums[b] = acc
		}
	})
	offset := id
	for b := 0; b < blocks; b++ {
		s := sums[b]
		sums[b] = offset
		offset = op(offset, s)
	}
	For(c, 0, blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			acc := sums[b]
			for i := lo; i < hi; i++ {
				acc = op(acc, xs[i])
				out[i] = acc
			}
		}
	})
}

// Filter returns the elements satisfying pred, stably, using the
// count-scan-scatter pattern. Work O(n), span O(log n + n/blocks).
func Filter[T any](c *Ctx, xs []T, grain int, pred func(T) bool) []T {
	if grain <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("workspan: invalid grain %d", grain))
	}
	n := len(xs)
	if n == 0 {
		return nil
	}
	blocks := (n + grain - 1) / grain
	counts := make([]int, blocks)
	For(c, 0, blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			k := 0
			for i := lo; i < hi; i++ {
				if pred(xs[i]) {
					k++
				}
			}
			counts[b] = k
		}
	})
	total := 0
	for b := range counts {
		k := counts[b]
		counts[b] = total
		total += k
	}
	out := make([]T, total)
	For(c, 0, blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			w := counts[b]
			for i := lo; i < hi; i++ {
				if pred(xs[i]) {
					out[w] = xs[i]
					w++
				}
			}
		}
	})
	return out
}

// MergeSort sorts xs in place (stably) with parallel recursion and
// parallel merges. Work O(n log n), span O(log^3 n).
func MergeSort[T any](c *Ctx, xs []T, grain int, less func(a, b T) bool) {
	if grain <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("workspan: invalid grain %d", grain))
	}
	buf := make([]T, len(xs))
	mergeSort(c, xs, buf, grain, less)
}

func mergeSort[T any](c *Ctx, xs, buf []T, grain int, less func(a, b T) bool) {
	if len(xs) <= grain {
		sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	mid := len(xs) / 2
	c.Do(
		func(c *Ctx) { mergeSort(c, xs[:mid], buf[:mid], grain, less) },
		func(c *Ctx) { mergeSort(c, xs[mid:], buf[mid:], grain, less) },
	)
	parMerge(c, xs[:mid], xs[mid:], buf, grain, less)
	copy(xs, buf)
}

// parMerge merges sorted a and b into out (stably: ties take from a
// first) by splitting the larger input at its median and binary-searching
// the matching split point in the other. The split directions differ so
// that elements equal to the pivot keep a-before-b order.
func parMerge[T any](c *Ctx, a, b, out []T, grain int, less func(x, y T) bool) {
	// The parallel split needs the larger side to have >= 2 elements to
	// guarantee progress; 16 is also a sane serial cutoff.
	cutoff := grain
	if cutoff < 16 {
		cutoff = 16
	}
	if len(a)+len(b) <= cutoff {
		serialMerge(a, b, out, less)
		return
	}
	var ma, mb int
	if len(a) >= len(b) {
		ma = len(a) / 2
		pivot := a[ma]
		// First b >= pivot: b's equals go right, after a's pivot run.
		mb = sort.Search(len(b), func(i int) bool { return !less(b[i], pivot) })
	} else {
		mb = len(b) / 2
		pivot := b[mb]
		// First a > pivot: a's equals go left, before b's pivot run.
		ma = sort.Search(len(a), func(i int) bool { return less(pivot, a[i]) })
	}
	c.Do(
		func(c *Ctx) { parMerge(c, a[:ma], b[:mb], out[:ma+mb], grain, less) },
		func(c *Ctx) { parMerge(c, a[ma:], b[mb:], out[ma+mb:], grain, less) },
	)
}

func serialMerge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}

// Quicksort sorts xs in place with parallel recursion over the two
// partitions (the partition itself is sequential, so the span is O(n) in
// the worst case but O(log^2 n) in expectation — the classic contrast
// with MergeSort's deterministic polylog span). Pivots are median-of-
// three, making adversarial inputs unlikely rather than impossible.
func Quicksort[T any](c *Ctx, xs []T, grain int, less func(a, b T) bool) {
	if grain <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("workspan: invalid grain %d", grain))
	}
	if len(xs) <= grain {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	// Median-of-three pivot, moved to the end.
	n := len(xs)
	mid := n / 2
	if less(xs[mid], xs[0]) {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if less(xs[n-1], xs[0]) {
		xs[n-1], xs[0] = xs[0], xs[n-1]
	}
	if less(xs[n-1], xs[mid]) {
		xs[n-1], xs[mid] = xs[mid], xs[n-1]
	}
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	pivot := xs[n-2]
	lo, hi := 0, n-2
	for lo < hi {
		for lo < hi && less(xs[lo], pivot) {
			lo++
		}
		for lo < hi && !less(xs[hi-1], pivot) {
			hi--
		}
		if lo < hi-1 {
			xs[lo], xs[hi-1] = xs[hi-1], xs[lo]
		}
	}
	xs[lo], xs[n-2] = xs[n-2], xs[lo]
	c.Do(
		func(c *Ctx) { Quicksort(c, xs[:lo], grain, less) },
		func(c *Ctx) { Quicksort(c, xs[lo+1:], grain, less) },
	)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
