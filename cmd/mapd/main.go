// Command mapd serves the F&M cost model over HTTP: cost evaluation
// (POST /v1/eval), mapping search (POST /v1/search), slack analysis
// (GET /v1/slack), metrics (GET /v1/metrics), and health (GET /healthz).
// See internal/serve for the serving machinery — micro-batching,
// bounded-queue backpressure, deadline propagation, graceful degradation
// and shutdown.
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// in-flight and queued work is finished (bounded by -drain), running
// anneals halt at their next exchange barrier (checkpointing when
// -checkpoint-dir is set), the persistent mapping store (when
// -store-dir is set) is flushed and closed, and the final metrics
// snapshot is written to -obs-out.
//
// With -store-dir, every mapping the server prices is appended to a
// crash-safe atlas (internal/store) and recovered on the next start, so
// a restarted mapd answers previously priced work from disk. Recovery
// truncates torn tails from a kill -9 and quarantines damaged segments;
// the outcome is logged at startup and visible as store.* metrics.
//
// Usage:
//
//	mapd -listen :8080
//	mapd -listen :8080 -queue 128 -eval-workers 4 -searches 2
//	mapd -listen :8080 -checkpoint-dir /var/lib/mapd -obs-out final.json
//	mapd -listen :8080 -store-dir /var/lib/mapd/atlas
//	mapd -listen :8080 -admission-control   # enable POST /v1/admission
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	poolWorkers := flag.Int("pool-workers", 0, "work-stealing pool size shared by batches and searches (0 = one per CPU)")
	queue := flag.Int("queue", 64, "eval admission queue capacity (full queue answers 429)")
	evalWorkers := flag.Int("eval-workers", 2, "queue drain workers")
	batchMax := flag.Int("batch-max", 32, "max eval jobs coalesced per batch")
	searches := flag.Int("searches", 2, "concurrent search slots")
	cacheEntries := flag.Int("cache", 1<<16, "eval cache capacity (entries)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline when the client sends none")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for crash-safe anneal checkpoints (enables resume across restarts)")
	storeDir := flag.String("store-dir", "", "directory for the persistent mapping atlas (warm answers across restarts)")
	obsOut := flag.String("obs-out", "", "write the final metrics snapshot as JSON to this path on shutdown")
	admission := flag.Bool("admission-control", false, "enable POST /v1/admission (runtime serve/shed/pause switching)")
	flag.Parse()

	if err := run(*listen, *storeDir, serve.Config{
		PoolWorkers:      *poolWorkers,
		QueueDepth:       *queue,
		EvalWorkers:      *evalWorkers,
		BatchMax:         *batchMax,
		MaxSearches:      *searches,
		CacheEntries:     *cacheEntries,
		DefaultDeadline:  *deadline,
		CheckpointDir:    *checkpointDir,
		AdmissionControl: *admission,
		Obs:              obs.New(),
	}, *drain, *obsOut); err != nil {
		fmt.Fprintf(os.Stderr, "mapd: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, storeDir string, cfg serve.Config, drainBudget time.Duration, obsOut string) error {
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(store.OS{}, storeDir, store.Options{Obs: cfg.Obs})
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		rep := st.Report()
		fmt.Fprintf(os.Stderr, "mapd: store recovered %d mappings from %d segments", rep.Records, rep.Segments)
		if rep.TruncatedBytes > 0 {
			fmt.Fprintf(os.Stderr, ", truncated %d torn bytes", rep.TruncatedBytes)
		}
		if !rep.Healthy() {
			fmt.Fprintf(os.Stderr, " — UNHEALTHY (quarantined %v, missing %v): serving what survived",
				rep.Quarantined, rep.Missing)
		}
		fmt.Fprintln(os.Stderr)
		cfg.Store = st
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mapd: listening on %s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mapd: %s — draining (budget %s)\n", sig, drainBudget)
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainBudget)
	defer cancel()
	// Stop the listener and in-flight HTTP exchanges first, then drain
	// the service's own queues and searches.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mapd: http shutdown: %v\n", err)
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mapd: %v\n", err)
	}
	snap := srv.Close()
	if st != nil {
		// The drain finished every queued evaluation, so every pricing
		// has been appended; flush and seal the atlas.
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mapd: store close: %v\n", err)
		}
	}
	if obsOut != "" {
		if err := writeSnapshot(obsOut, snap); err != nil {
			return fmt.Errorf("write obs snapshot: %w", err)
		}
	}
	fmt.Fprintln(os.Stderr, "mapd: drained")
	return nil
}

func writeSnapshot(path string, snap obs.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
