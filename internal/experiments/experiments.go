// Package experiments regenerates every quantitative claim of the panel
// paper. The paper is a position piece with no numbered tables or
// figures, so the artifact list is the set of claims C1..C12 catalogued
// in DESIGN.md; each experiment here rebuilds one claim from the
// simulators and reports paper-value versus measured-value in a table.
// cmd/panelbench prints all of them; EXPERIMENTS.md records a reference
// run; the root bench_test.go times the underlying kernels.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Trace-kind shorthands used when picking energies out of machine metrics.
const (
	traceWire     = trace.KindWire
	traceOverhead = trace.KindOverhead
)

// Metric is one numeric performance measurement attached to a result.
// Unlike table rows (formatted strings for humans), metrics are machine
// citable: cmd/benchcheck compares them across runs against the
// committed BENCH_panel.json baseline.
type Metric struct {
	// Name identifies the metric within its experiment (unique per result).
	Name string `json:"name"`
	// Value is the measured number.
	Value float64 `json:"value"`
	// Unit labels Value ("moves/sec", "ratio", ...).
	Unit string `json:"unit"`
	// Better is "higher" or "lower": the direction of improvement.
	Better string `json:"better"`
	// RelTol, when positive, makes the metric a gate: a run whose value
	// is worse than the baseline's by more than this relative fraction
	// fails the baseline comparison. Zero means informational only —
	// recorded and reported, never gating. Wall-clock absolutes should
	// stay informational (hosts differ); host-normalized ratios gate.
	RelTol float64 `json:"rel_tol,omitempty"`
}

// Regressed reports whether candidate regresses from baseline in m's
// Better direction by more than m.RelTol (false for informational
// metrics). m supplies the direction and tolerance; improvements of any
// size never regress.
func (m Metric) Regressed(baseline, candidate float64) bool {
	if m.RelTol <= 0 {
		return false
	}
	switch m.Better {
	case "lower":
		return candidate > baseline*(1+m.RelTol)
	default: // "higher"
		return candidate < baseline*(1-m.RelTol)
	}
}

// Result is one experiment's reproduction outcome.
type Result struct {
	// ID is the experiment identifier (E1..E12).
	ID string
	// Claim quotes or paraphrases the paper statement being reproduced.
	Claim string
	// Table carries the paper-vs-measured rows.
	Table *stats.Table
	// Pass reports whether every row landed within its tolerance.
	Pass bool
	// Notes explains substitutions, tolerances, or caveats.
	Notes []string
	// Metrics carries machine-comparable measurements (optional).
	Metrics []Metric
}

// WriteTo renders the result. It implements io.WriterTo.
func (r Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "\n--- %s: %s ---\n", r.ID, r.Claim)
	total += int64(n)
	if err != nil {
		return total, err
	}
	m, err := r.Table.WriteTo(w)
	total += m
	if err != nil {
		return total, err
	}
	for _, note := range r.Notes {
		n, err = fmt.Fprintf(w, "note: %s\n", note)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, m := range r.Metrics {
		gate := "informational"
		if m.RelTol > 0 {
			gate = fmt.Sprintf("gated at %.0f%%", m.RelTol*100)
		}
		n, err = fmt.Fprintf(w, "metric: %s = %g %s (%s is better; %s)\n", m.Name, m.Value, m.Unit, m.Better, gate)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	n, err = fmt.Fprintf(w, "verdict: %s\n", verdict)
	total += int64(n)
	return total, err
}

// Experiment is a registered reproduction.
type Experiment struct {
	ID   string
	Name string
	Run  func() Result
}

// All returns every experiment in order. E8 measures wall-clock
// parallelism on real goroutines; everything else is deterministic.
func All() []Experiment {
	return []Experiment{
		{"E1", "5nm energy ratios (wire/diagonal/off-chip vs add)", E1},
		{"E2", "CPU instruction-delivery overhead", E2},
		{"E3", "edit-distance F&M mapping", E3},
		{"E4", "FFT function x mapping space", E4},
		{"E5", "systematic mapping search", E5},
		{"E6", "modular composition and remapping", E6},
		{"E7", "default mapper vs serial abstraction", E7},
		{"E8", "work-span model on real cores", E8},
		{"E9", "cache-oblivious algorithms across levels", E9},
		{"E10", "PRAM / XMT work-time framework", E10},
		{"E11", "communication-avoiding matmul and collectives", E11},
		{"E12", "model extensions: read/write asymmetry, many-core headroom", E12},
		{"E13", "full-stack verification of functions and mappings", E13},
		{"E14", "accelerator dataflows: weight- vs output-stationary", E14},
		{"E15", "recompute vs communicate", E15},
		{"E16", "mechanical lowering to a domain-specific architecture", E16},
		{"E17", "2-D systolic matmul array with explicit forwarding", E17},
		{"E18", "stencil halo exchange: surface vs volume", E18},
		{"E19", "fault injection: graceful degradation of mappings", E19},
		{"E20", "delta-evaluation anneal hot path: moves/sec and equivalence", E20},
	}
}

// verdict formats a within-tolerance check for a table cell.
func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}
