package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
)

const searchBody = `{
	"recurrence": {"dims": [5, 5], "deps": [[1, 0], [0, 1]]},
	"target": {"width": 4},
	"kind": "anneal",
	"iters": 200,
	"chains": 2,
	"seed": 7
}`

func TestSearchAnneal(t *testing.T) {
	s := newTestServer(t, nil)
	var resp SearchResponse
	code, rec := post(t, s, "POST", "/v1/search", searchBody, &resp)
	if code != 200 {
		t.Fatalf("search: %d %s", code, rec.Body.String())
	}
	if resp.Partial || resp.Degraded {
		t.Fatalf("uncontended search must be complete: %+v", resp)
	}
	if resp.DoneIters != 200 || resp.TotalIters != 200 {
		t.Fatalf("iters: %+v", resp)
	}
	if resp.Best.Objective <= 0 || resp.Best.Cost.Cycles <= 0 {
		t.Fatalf("degenerate best: %+v", resp.Best)
	}

	// Same request, same answer: the search is a deterministic function
	// of the request.
	var again SearchResponse
	if code, _ := post(t, s, "POST", "/v1/search", searchBody, &again); code != 200 {
		t.Fatalf("repeat search failed")
	}
	if again.Best != resp.Best {
		t.Fatalf("same request, different best: %+v vs %+v", again.Best, resp.Best)
	}
}

func TestSearchExhaustive(t *testing.T) {
	s := newTestServer(t, nil)
	body := `{
		"recurrence": {"dims": [5, 5], "deps": [[1, 0], [0, 1]]},
		"target": {"width": 4},
		"kind": "exhaustive",
		"max_tau": 16
	}`
	var resp SearchResponse
	code, rec := post(t, s, "POST", "/v1/search", body, &resp)
	if code != 200 {
		t.Fatalf("exhaustive: %d %s", code, rec.Body.String())
	}
	if resp.DoneIters == 0 || resp.Best.Cost.Cycles <= 0 {
		t.Fatalf("sweep found nothing: %+v", resp)
	}
}

func TestSearchValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad kind", `{"recurrence": {"dims": [4, 4], "deps": []}, "target": {"width": 2}, "kind": "lucky"}`, 422},
		{"bad objective", `{"recurrence": {"dims": [4, 4], "deps": []}, "target": {"width": 2}, "objective": "vibes"}`, 422},
		{"iters over cap", fmt.Sprintf(`{"recurrence": {"dims": [4, 4], "deps": []}, "target": {"width": 2}, "iters": %d}`, maxSearchIters+1), 422},
		{"chains over cap", fmt.Sprintf(`{"recurrence": {"dims": [4, 4], "deps": []}, "target": {"width": 2}, "chains": %d}`, maxSearchChains+1), 422},
		{"exhaustive on 1-D", `{"recurrence": {"dims": [8], "deps": [[1]]}, "target": {"width": 2}, "kind": "exhaustive"}`, 422},
		{"negative p", `{"recurrence": {"dims": [4, 4], "deps": [[1, 0]]}, "target": {"width": 2}, "kind": "exhaustive", "p": -1}`, 422},
		{"p over grid width", `{"recurrence": {"dims": [4, 4], "deps": [[1, 0]]}, "target": {"width": 2}, "kind": "exhaustive", "p": 3}`, 422},
		{"negative max_tau", `{"recurrence": {"dims": [4, 4], "deps": [[1, 0]]}, "target": {"width": 2}, "kind": "exhaustive", "max_tau": -1}`, 422},
		{"max_tau over cap", fmt.Sprintf(`{"recurrence": {"dims": [4, 4], "deps": [[1, 0]]}, "target": {"width": 2}, "kind": "exhaustive", "max_tau": %d}`, maxSweepTau+1), 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, rec := post(t, s, "POST", "/v1/search", tc.body, nil)
			if code != tc.want {
				t.Fatalf("want %d, got %d: %s", tc.want, code, rec.Body.String())
			}
		})
	}
}

// TestSearchDegradedUnderShed: shed mode never starts a search; it
// replays a stored result (degraded) when one exists and refuses with
// 429 when none does.
func TestSearchDegradedUnderShed(t *testing.T) {
	s := newTestServer(t, nil)
	var full SearchResponse
	if code, _ := post(t, s, "POST", "/v1/search", searchBody, &full); code != 200 {
		t.Fatalf("priming search failed")
	}
	s.SetMode(ModeShed)

	var degraded SearchResponse
	if code, _ := post(t, s, "POST", "/v1/search", searchBody, &degraded); code != 200 {
		t.Fatalf("shed-mode replay failed")
	}
	if !degraded.Degraded || degraded.Best != full.Best {
		t.Fatalf("shed replay: %+v, primed %+v", degraded, full)
	}

	unseen := `{
		"recurrence": {"dims": [4, 4], "deps": [[1, 0]]},
		"target": {"width": 2},
		"iters": 100
	}`
	code, rec := post(t, s, "POST", "/v1/search", unseen, nil)
	if code != 429 {
		t.Fatalf("unseen search in shed mode: want 429, got %d", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
}

// TestSearchPartialOnDeadline: a search whose context is already dead
// returns its best-so-far state marked partial — the degradation
// contract for deadline-bounded searches.
func TestSearchPartialOnDeadline(t *testing.T) {
	s := newTestServer(t, nil)
	g, dom, err := (&RecurrenceSpec{Dims: []int{5, 5}, Deps: [][]int{{1, 0}, {0, 1}}}).materialize()
	if err != nil {
		t.Fatal(err)
	}
	_ = dom
	tgt, err := (&TargetSpec{Width: 4}).target()
	if err != nil {
		t.Fatal(err)
	}
	req := &SearchRequest{Kind: "anneal", Iters: 5000, Chains: 2, Seed: 3}
	gfp := g.Fingerprint()
	key := searchKey(gfp, tgt, req)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already spent
	resp, err := s.runAnneal(ctx, g, gfp, tgt, req, key)
	if err != nil {
		t.Fatalf("runAnneal with dead context must degrade, not fail: %v", err)
	}
	if !resp.Partial {
		t.Fatalf("dead-context search not marked partial: %+v", resp)
	}
	if resp.DoneIters >= resp.TotalIters {
		t.Fatalf("partial search claims completion: %+v", resp)
	}
	if resp.Best.Cost.Cycles <= 0 {
		t.Fatalf("partial search must still carry a best-so-far mapping: %+v", resp)
	}

	// The partial result is stored, so an overloaded replay can serve it.
	stored, ok := s.searches.lookup(key)
	if !ok || stored.Best != resp.Best {
		t.Fatalf("partial result not stored for degraded replay")
	}
}

// TestSearchExhaustivePartialOnDeadline: a sweep whose context is
// already dead skips every tuple, still answers (the serial candidate
// is always priced), and is marked partial — the exhaustive analogue of
// the annealer's deadline degradation.
func TestSearchExhaustivePartialOnDeadline(t *testing.T) {
	s := newTestServer(t, nil)
	g, dom, err := (&RecurrenceSpec{Dims: []int{5, 5}, Deps: [][]int{{1, 0}, {0, 1}}}).materialize()
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := (&TargetSpec{Width: 4}).target()
	if err != nil {
		t.Fatal(err)
	}
	req := &SearchRequest{Kind: "exhaustive", MaxTau: 16}
	gfp := g.Fingerprint()
	key := searchKey(gfp, tgt, req)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already spent
	resp, err := s.runExhaustive(ctx, g, dom, gfp, tgt, req, key)
	if err != nil {
		t.Fatalf("runExhaustive with dead context must degrade, not fail: %v", err)
	}
	if !resp.Partial {
		t.Fatalf("dead-context sweep not marked partial: %+v", resp)
	}
	if resp.Best.Cost.Cycles <= 0 {
		t.Fatalf("partial sweep must still carry a best-so-far mapping: %+v", resp)
	}

	// A later uncut run of the same request completes and overwrites the
	// stored partial (never the other way around).
	full, err := s.runExhaustive(context.Background(), g, dom, gfp, tgt, req, key)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatalf("uncut sweep marked partial: %+v", full)
	}
	if full.DoneIters <= resp.DoneIters {
		t.Fatalf("full sweep priced %d candidates, partial %d — expected strictly more", full.DoneIters, resp.DoneIters)
	}
	stored, ok := s.searches.lookup(key)
	if !ok || stored.Partial {
		t.Fatalf("complete result must replace the stored partial: %+v (ok=%v)", stored, ok)
	}
}

// TestSearchCheckpointResume: with a checkpoint directory configured, a
// deadline-cut search leaves a checkpoint that an identical later
// request resumes from — DoneIters ratchets forward instead of
// restarting at zero, and the finished result matches an uninterrupted
// run of the same request.
func TestSearchCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) { c.CheckpointDir = dir })

	body := `{
		"recurrence": {"dims": [5, 5], "deps": [[1, 0], [0, 1]]},
		"target": {"width": 4},
		"iters": 1000,
		"chains": 2,
		"seed": 9
	}`
	// Run the search to completion once; this also writes its checkpoint.
	var full SearchResponse
	if code, rec := post(t, s, "POST", "/v1/search", body, &full); code != 200 {
		t.Fatalf("search: %d %s", code, rec.Body.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "anneal-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want one checkpoint file, got %v (%v)", files, err)
	}

	// An identical request on a FRESH server with the same checkpoint
	// directory resumes from the finished checkpoint and reproduces the
	// answer bit-for-bit.
	s2 := newTestServer(t, func(c *Config) { c.CheckpointDir = dir })
	var resumed SearchResponse
	if code, rec := post(t, s2, "POST", "/v1/search", body, &resumed); code != 200 {
		t.Fatalf("resumed search: %d %s", code, rec.Body.String())
	}
	if resumed.Best != full.Best {
		t.Fatalf("resume changed the answer: %+v vs %+v", resumed.Best, full.Best)
	}
}
