package fm

import (
	"fmt"

	"repro/internal/tech"
)

// NodeID identifies a node in a Graph. IDs are dense, start at zero, and
// are assigned in construction order; because every dependency must
// already exist when a node is added, ascending ID order is always a
// topological order.
type NodeID int32

// Graph is a function in the F&M sense: an immutable dataflow graph in
// which each node computes one element from earlier elements. Inputs are
// nodes with no operation; every other node applies one primitive
// operation to its dependencies. The representation is flat arrays so
// million-node functions (e.g. a 1024x1024 DP table) stay compact.
type Graph struct {
	name string

	op     []tech.OpClass // per node; meaningless for inputs
	bits   []uint32       // per node result width
	input  []bool         // true for input nodes
	dep    []NodeID       // flattened dependency lists
	depOff []int32        // node n's deps are dep[depOff[n]:depOff[n+1]]

	outputs []NodeID
	labels  map[NodeID]string
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.bits) }

// NumEdges returns the total number of dependencies.
func (g *Graph) NumEdges() int { return len(g.dep) }

// IsInput reports whether n is an input node.
func (g *Graph) IsInput(n NodeID) bool { return g.input[n] }

// Op returns node n's operation class. Inputs have no operation.
func (g *Graph) Op(n NodeID) tech.OpClass { return g.op[n] }

// Bits returns the width of node n's result.
func (g *Graph) Bits(n NodeID) int { return int(g.bits[n]) }

// Deps returns node n's dependencies. The slice aliases graph storage and
// must not be modified.
func (g *Graph) Deps(n NodeID) []NodeID {
	return g.dep[g.depOff[n]:g.depOff[n+1]]
}

// Outputs returns the declared output nodes in declaration order. The
// slice aliases graph storage and must not be modified.
func (g *Graph) Outputs() []NodeID { return g.outputs }

// Label returns the debug label of n, or its numeric form.
func (g *Graph) Label(n NodeID) string {
	if s, ok := g.labels[n]; ok {
		return s
	}
	//lint:allow alloc(unlabeled-node fallback only: generator-built graphs label every node, so replay never takes this branch)
	return fmt.Sprintf("n%d", n)
}

// Inputs returns all input node IDs in ascending order.
func (g *Graph) Inputs() []NodeID {
	var in []NodeID
	for n := 0; n < g.NumNodes(); n++ {
		if g.input[n] {
			in = append(in, NodeID(n))
		}
	}
	return in
}

// CountOps returns the number of non-input nodes: the function's total
// work in primitive operations.
func (g *Graph) CountOps() int {
	ops := 0
	for n := 0; n < g.NumNodes(); n++ {
		if !g.input[n] {
			ops++
		}
	}
	return ops
}

// Depth returns the length of the longest dependency chain measured in
// operations (inputs contribute zero): the function's span, and therefore
// the minimum depth of any mapping. This is the quantity a
// "minimum-depth parallel" mapping achieves.
func (g *Graph) Depth() int {
	depth := make([]int32, g.NumNodes())
	var maxD int32
	for n := 0; n < g.NumNodes(); n++ {
		var d int32
		for _, p := range g.Deps(NodeID(n)) {
			if depth[p] > d {
				d = depth[p]
			}
		}
		if !g.input[n] {
			d++
		}
		depth[n] = d
		if d > maxD {
			maxD = d
		}
	}
	return int(maxD)
}

// Builder constructs a Graph. Dependencies must already exist when a node
// is added, which makes cycles unrepresentable and IDs topologically
// ordered by construction.
type Builder struct {
	g     Graph
	built bool
}

// NewBuilder returns a builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: Graph{name: name, labels: make(map[NodeID]string)}}
}

func (b *Builder) checkBuilt() {
	if b.built {
		panic("fm: builder used after Build")
	}
}

func (b *Builder) add(op tech.OpClass, bits int, isInput bool, deps []NodeID) NodeID {
	b.checkBuilt()
	if bits <= 0 || bits > 1<<20 {
		panic(fmt.Sprintf("fm: invalid node width %d", bits))
	}
	id := NodeID(len(b.g.bits))
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("fm: node %d depends on nonexistent node %d", id, d))
		}
	}
	b.g.op = append(b.g.op, op)
	b.g.bits = append(b.g.bits, uint32(bits))
	b.g.input = append(b.g.input, isInput)
	if b.g.depOff == nil {
		b.g.depOff = append(b.g.depOff, 0)
	}
	b.g.dep = append(b.g.dep, deps...)
	b.g.depOff = append(b.g.depOff, int32(len(b.g.dep)))
	return id
}

// Input declares an input element of the given width and returns its node.
func (b *Builder) Input(bits int) NodeID {
	return b.add(tech.OpAdd, bits, true, nil)
}

// Op adds a compute node applying class to deps and returns its node.
// A node with no dependencies is a source computation (e.g. a DP boundary
// cell computed from constants).
func (b *Builder) Op(class tech.OpClass, bits int, deps ...NodeID) NodeID {
	return b.add(class, bits, false, deps)
}

// Label attaches a debug label to a node.
func (b *Builder) Label(n NodeID, format string, args ...any) {
	b.checkBuilt()
	b.g.labels[n] = fmt.Sprintf(format, args...)
}

// MarkOutput declares n as an output of the function.
func (b *Builder) MarkOutput(n NodeID) {
	b.checkBuilt()
	if n < 0 || int(n) >= len(b.g.bits) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("fm: output of nonexistent node %d", n))
	}
	b.g.outputs = append(b.g.outputs, n)
}

// Import copies all non-input nodes of src into the graph under
// construction, substituting replaceInputs (in src.Inputs() order) for
// src's input nodes. It returns a mapping from src node IDs to new IDs.
// This is the graph-surgery primitive behind module composition.
func (b *Builder) Import(src *Graph, replaceInputs []NodeID) []NodeID {
	b.checkBuilt()
	srcInputs := src.Inputs()
	if len(replaceInputs) != len(srcInputs) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("fm: Import needs %d replacement inputs, got %d",
			len(srcInputs), len(replaceInputs)))
	}
	remap := make([]NodeID, src.NumNodes())
	for i := range remap {
		remap[i] = -1
	}
	for i, in := range srcInputs {
		if replaceInputs[i] < 0 || int(replaceInputs[i]) >= len(b.g.bits) {
			//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
			panic(fmt.Sprintf("fm: Import replacement %d does not exist", replaceInputs[i]))
		}
		remap[in] = replaceInputs[i]
	}
	deps := make([]NodeID, 0, 8)
	for n := 0; n < src.NumNodes(); n++ {
		if src.IsInput(NodeID(n)) {
			continue
		}
		deps = deps[:0]
		for _, d := range src.Deps(NodeID(n)) {
			nd := remap[d]
			if nd < 0 {
				//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
				panic(fmt.Sprintf("fm: Import of %q hit unmapped dep %d", src.Name(), d))
			}
			deps = append(deps, nd)
		}
		remap[n] = b.Op(src.Op(NodeID(n)), src.Bits(NodeID(n)), deps...)
		if lbl, ok := src.labels[NodeID(n)]; ok {
			b.g.labels[remap[n]] = lbl
		}
	}
	return remap
}

// Build finalizes and returns the graph. The builder cannot be reused.
func (b *Builder) Build() *Graph {
	b.checkBuilt()
	b.built = true
	if b.g.depOff == nil {
		b.g.depOff = []int32{0}
	}
	return &b.g
}
