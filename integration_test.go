package repro

import (
	"strings"
	"testing"

	"repro/internal/algorithms/editdist"
	"repro/internal/algorithms/matmul"
	"repro/internal/fm"
	"repro/internal/fm/search"
	"repro/internal/geom"
	"repro/internal/idioms"
	"repro/internal/lower"
	"repro/internal/tech"
	"repro/internal/trace"
	"repro/internal/verify"
)

// TestEndToEndEditDistancePipeline drives the full stack on the paper's
// worked example: materialize the recurrence, verify its semantics, map
// it with the paper's fragment, check and refine the mapping, price it,
// search for a better one, and lower the result to hardware. Every layer
// of the repository participates.
func TestEndToEndEditDistancePipeline(t *testing.T) {
	r := []byte("spaa-panel")
	q := []byte("spa-pannel")

	// 1. Function: materialize and verify semantics against the serial DP.
	g, dom, err := editdist.Recurrence(r, q).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := fm.Interpret(g, nil, editdist.Evaluator(dom, r, q, editdist.Levenshtein()))
	if err != nil {
		t.Fatal(err)
	}
	want := editdist.Distance(r, q, editdist.Levenshtein())
	if got := vals[dom.Node(len(r)-1, len(q)-1)]; got != int64(want) {
		t.Fatalf("graph distance %d != serial %d", got, want)
	}

	// 2. Mapping: the paper's anti-diagonal fragment on 5 processors.
	tgt := fm.DefaultTarget(5, 1)
	tgt.Grid.PitchMM = 0.1
	tgt.MemWordsPerNode = 1 << 20
	stride := fm.MinAntiDiagonalStride(tgt, tech.OpAdd, 32, len(q), 5)
	sched := fm.AntiDiagonalSchedule(dom, 5, stride, geom.Pt(0, 0))

	// 3. Legality, two independent engines.
	if err := fm.Check(g, sched, tgt); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res := verify.Refine(g, sched, tgt); !res.OK() {
		t.Fatalf("Refine: %d violations", len(res.Violations))
	}

	// 4. Cost, with a trace.
	tr := trace.New()
	cost, err := fm.Evaluate(g, sched, tgt, fm.EvalOptions{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	serialCost, err := editdist.SerialMapping(r, q, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Cycles >= serialCost.Cycles {
		t.Errorf("paper mapping (%d) should beat serial (%d)", cost.Cycles, serialCost.Cycles)
	}
	if tr.Len() == 0 {
		t.Error("trace empty")
	}
	if out := trace.Render(tr, trace.RenderOptions{Grid: tgt.Grid, Columns: 40}); !strings.Contains(out, "space-time") {
		t.Error("render failed")
	}
	if s := trace.ChromeTraceString(tr, tgt.Grid); !strings.HasPrefix(s, "[") {
		t.Error("chrome export failed")
	}

	// 5. Search: the affine family should contain something at least as
	// good as some legal candidate, and the Pareto front is non-trivial.
	// The affine family needs tau large enough for the wrap dependence
	// (op + hop*(P-1) within one row step): tau=8 at P=4 on this pitch.
	cands := search.Exhaustive2D(g, dom, tgt, search.Affine2DOptions{P: 4, MaxTau: 8})
	if len(cands) < 2 {
		t.Fatalf("search found %d candidates", len(cands))
	}
	best := search.Best(cands, search.MinTime)
	if best.Cost.Cycles >= serialCost.Cycles {
		t.Errorf("search best (%d) should beat serial (%d)", best.Cost.Cycles, serialCost.Cycles)
	}

	// 6. Lowering: a linear systolic array with one add-class PE per column.
	arch, err := lower.Lower(g, sched, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.PEs) != 5 || !arch.IsLinearArray() {
		t.Fatalf("lowering: %d PEs, linear=%v", len(arch.PEs), arch.IsLinearArray())
	}
	if v := arch.Verilog(); !strings.Contains(v, "module top(") {
		t.Error("netlist missing top module")
	}
}

// TestEndToEndIdiomPipeline composes idiom modules, remaps between
// layouts, verifies the composite semantically, and prices it.
func TestEndToEndIdiomPipeline(t *testing.T) {
	const n = 8
	tgt := fm.DefaultTarget(8, 1)
	tgt.MemWordsPerNode = 1 << 20
	lay := idioms.BlockCyclic(tgt.Grid)
	rev := func(i int) geom.Point { return tgt.Grid.At(n - 1 - i) }

	mp := idioms.Map(tgt, n, tech.OpAdd, 32, lay)
	sc := idioms.ScanBlelloch(tgt, n, tech.OpAdd, 32, lay)
	rd := idioms.Reduce(tgt, n, tech.OpAdd, 32, rev)

	stage1, err := fm.ComposeAligned("map;scan", mp, sc, tgt)
	if err != nil {
		t.Fatal(err)
	}
	full, st, err := fm.ComposeWithRemap("map;scan>reduce", stage1, rd, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves == 0 {
		t.Error("reversed layout should need a shuffle")
	}
	if err := fm.Check(full.Graph, full.Sched, tgt); err != nil {
		t.Fatalf("composite illegal: %v", err)
	}

	// Semantics: reduce(scan(x)) with x = 1..8: sum of prefix sums = 120.
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = int64(i + 1)
	}
	vals, err := fm.Interpret(full.Graph, inputs, func(nd fm.NodeID, deps []int64) int64 {
		if len(deps) == 1 {
			return deps[0]
		}
		var s int64
		for _, d := range deps {
			s += d
		}
		return s
	})
	if err != nil {
		t.Fatal(err)
	}
	out := vals[full.Out[0].Nodes[0]]
	if out != 120 {
		t.Errorf("reduce(scan(1..8)) = %d, want 120", out)
	}

	cost, err := fm.Evaluate(full.Graph, full.Sched, tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Messages == 0 || cost.WireEnergy == 0 {
		t.Error("composite pipeline should communicate")
	}
}

// TestEndToEndSystolicVerifiedAndLowered ties matmul, verification, and
// lowering together on the forwarded systolic array.
func TestEndToEndSystolicVerifiedAndLowered(t *testing.T) {
	const n = 4
	tgt := fm.DefaultTarget(n, n)
	tgt.Grid.PitchMM = 0.2
	tgt.MemWordsPerNode = 1 << 20
	f := matmul.BuildForwarded(n, tgt)

	a := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	b := []int64{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1}
	got := f.Interpret(a, b)
	for i := range a {
		if got[i] != a[i] {
			t.Fatalf("A*I wrong at %d", i)
		}
	}
	if res := verify.Refine(f.Graph, f.Sched, tgt); !res.OK() {
		t.Fatal("systolic array failed refinement")
	}
	arch, err := lower.Lower(f.Graph, f.Sched, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.PEs) != n*n {
		t.Fatalf("PEs = %d", len(arch.PEs))
	}
}
