package experiments

import (
	"repro/internal/geom"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/tech"
)

// newStripMachine builds a 10x1 strip machine with the given NoC mode
// (0 = cut-through, 1 = store-and-forward) for the switching ablation.
func newStripMachine(mode int) *machine.Machine {
	return machine.New(machine.Config{
		Grid:    geom.NewGrid(10, 1, 1.0),
		Tech:    tech.N5(),
		NoCMode: noc.Mode(mode),
	})
}
