package fm

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Recurrence is a uniform recurrence equation over a rectangular domain:
// every cell applies the same operation to cells at fixed negative
// offsets. This is the function form of the paper's worked example,
//
//	Forall i, j in (0:N-1, 0:N-1)
//	  H(i,j) = min(H(i-1,j-1)+f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0)
//
// which is Deps = {(1,1),(1,0),(0,1)} over an N x N domain. Cells whose
// producers fall outside the domain simply have fewer dependencies
// (boundary conditions are constants folded into the cell).
type Recurrence struct {
	// Name labels the generated graph.
	Name string
	// Dims are the domain extents, e.g. {N, N}.
	Dims []int
	// Deps are the dependence offsets, subtracted from a cell's index to
	// find each producer. Every offset must be lexicographically positive
	// (first nonzero component > 0) so the dependence relation is acyclic
	// and row-major order is a topological order.
	Deps [][]int
	// Op and Bits describe each cell's computation.
	Op   tech.OpClass
	Bits int
}

// Domain maps between multi-indices and the NodeIDs of a materialized
// recurrence. Cell (i0,i1,...) is node i0*S0 + i1*S1 + ... in row-major
// order, so the cell IDs coincide with linear indices.
type Domain struct {
	dims    []int
	strides []int
}

// Size returns the number of cells.
func (d *Domain) Size() int {
	n := 1
	for _, e := range d.dims {
		n *= e
	}
	return n
}

// Dims returns the domain extents. The slice must not be modified.
func (d *Domain) Dims() []int { return d.dims }

// Node returns the NodeID of the cell at idx.
func (d *Domain) Node(idx ...int) NodeID {
	if len(idx) != len(d.dims) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("fm: index rank %d, domain rank %d", len(idx), len(d.dims)))
	}
	lin := 0
	for k, v := range idx {
		if v < 0 || v >= d.dims[k] {
			//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
			panic(fmt.Sprintf("fm: index %v outside domain %v", idx, d.dims))
		}
		lin += v * d.strides[k]
	}
	return NodeID(lin)
}

// Index writes the multi-index of node n into dst (which must have the
// domain's rank) and returns it.
func (d *Domain) Index(n NodeID, dst []int) []int {
	if len(dst) != len(d.dims) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("fm: dst rank %d, domain rank %d", len(dst), len(d.dims)))
	}
	lin := int(n)
	for k := range d.dims {
		dst[k] = lin / d.strides[k]
		lin %= d.strides[k]
	}
	return dst
}

// Validate reports structural errors in the recurrence.
func (r Recurrence) Validate() error {
	if len(r.Dims) == 0 {
		return fmt.Errorf("fm: recurrence %q has empty domain", r.Name)
	}
	for _, e := range r.Dims {
		if e <= 0 {
			return fmt.Errorf("fm: recurrence %q has non-positive extent %d", r.Name, e)
		}
	}
	if r.Bits <= 0 || r.Bits > 1<<20 {
		// The upper bound mirrors Builder.add's limit so Materialize
		// reports bad widths as errors instead of panicking mid-build.
		return fmt.Errorf("fm: recurrence %q has invalid width %d", r.Name, r.Bits)
	}
	for _, d := range r.Deps {
		if len(d) != len(r.Dims) {
			return fmt.Errorf("fm: recurrence %q: offset %v has rank %d, domain rank %d",
				r.Name, d, len(d), len(r.Dims))
		}
		if !lexPositive(d) {
			return fmt.Errorf("fm: recurrence %q: offset %v is not lexicographically positive", r.Name, d)
		}
	}
	return nil
}

func lexPositive(d []int) bool {
	for _, v := range d {
		if v > 0 {
			return true
		}
		if v < 0 {
			return false
		}
	}
	return false // all zero
}

// Materialize builds the dataflow graph of the recurrence. All cells are
// compute nodes (cells with no in-domain producers are source
// computations over boundary constants). Cells no other cell consumes are
// marked as outputs.
func (r Recurrence) Materialize() (*Graph, *Domain, error) {
	if err := r.Validate(); err != nil {
		return nil, nil, err
	}
	rank := len(r.Dims)
	dom := &Domain{dims: append([]int(nil), r.Dims...), strides: make([]int, rank)}
	stride := 1
	for k := rank - 1; k >= 0; k-- {
		dom.strides[k] = stride
		stride *= r.Dims[k]
	}
	size := dom.Size()

	b := NewBuilder(r.Name)
	consumed := make([]bool, size)
	idx := make([]int, rank)
	prod := make([]int, rank)
	deps := make([]NodeID, 0, len(r.Deps))
	for lin := 0; lin < size; lin++ {
		dom.Index(NodeID(lin), idx)
		deps = deps[:0]
		for _, off := range r.Deps {
			in := true
			plin := 0
			for k := range prod {
				prod[k] = idx[k] - off[k]
				if prod[k] < 0 || prod[k] >= r.Dims[k] {
					in = false
					break
				}
				plin += prod[k] * dom.strides[k]
			}
			if in {
				deps = append(deps, NodeID(plin))
				consumed[plin] = true
			}
		}
		if id := b.Op(r.Op, r.Bits, deps...); int(id) != lin {
			//lint:allow panic(unreachable: Build assigns cell IDs densely in the same order they were interned)
			panic("fm: recurrence cell IDs out of sync")
		}
	}
	for lin := 0; lin < size; lin++ {
		if !consumed[lin] {
			b.MarkOutput(NodeID(lin))
		}
	}
	return b.Build(), dom, nil
}

// ScheduleByIndex materializes a schedule for a recurrence graph by
// evaluating f on every cell's multi-index. The idx slice passed to f is
// reused between calls and must not be retained.
func ScheduleByIndex(dom *Domain, f func(idx []int) Assignment) Schedule {
	sched := make(Schedule, dom.Size())
	idx := make([]int, len(dom.dims))
	for lin := range sched {
		dom.Index(NodeID(lin), idx)
		sched[lin] = f(idx)
	}
	return sched
}

// AntiDiagonalSchedule is the paper's mapping for a 2-D recurrence on a
// linear array of P processors:
//
//	Map H(i,j) at i % P  time floor(i/P)*N + j
//
// The paper's time expression is a per-processor local step counter; to
// make causality explicit in global cycles this schedule adds the
// wavefront skew (i mod P) — processor k runs k steps behind its left
// neighbour, which is what makes the anti-diagonals march — and scales
// the unit step to stride target cycles (use MinAntiDiagonalStride so one
// step covers the cell's op latency plus one hop of transit). origin
// anchors the processor row on the grid.
//
// AntiDiagonalScheduleChecked validates the domain rank, processor
// count, and stride, returning an error for malformed inputs (e.g.
// user-supplied dimensions).
func AntiDiagonalScheduleChecked(dom *Domain, p int, stride int64, origin geom.Point) (Schedule, error) {
	if len(dom.dims) != 2 {
		return nil, fmt.Errorf("fm: AntiDiagonalSchedule needs a 2-D domain, got rank %d", len(dom.dims))
	}
	if p <= 0 {
		return nil, fmt.Errorf("fm: invalid processor count %d", p)
	}
	if stride <= 0 {
		return nil, fmt.Errorf("fm: invalid stride %d", stride)
	}
	n := int64(dom.dims[1])
	return ScheduleByIndex(dom, func(idx []int) Assignment {
		i, j := int64(idx[0]), int64(idx[1])
		k := i % int64(p)
		return Assignment{
			Place: geom.Pt(origin.X+int(k), origin.Y),
			Time:  ((i/int64(p))*n + j + k) * stride,
		}
	}), nil
}

// AntiDiagonalSchedule is AntiDiagonalScheduleChecked for callers with
// statically known-good arguments; it panics on the errors the Checked
// variant would return.
func AntiDiagonalSchedule(dom *Domain, p int, stride int64, origin geom.Point) Schedule {
	sched, err := AntiDiagonalScheduleChecked(dom, p, stride, origin)
	if err != nil {
		//lint:allow panic(documented convenience wrapper; AntiDiagonalScheduleChecked returns the error)
		panic(err.Error())
	}
	return sched
}

// MinAntiDiagonalStride returns the smallest legal unit step for
// AntiDiagonalSchedule on tgt for an n-column domain over p processors.
// The binding constraints are the nearest-neighbour dependence — one step
// must cover the cell latency plus one hop of transit — and the wrap
// dependence from processor p-1 back to processor 0 when a row block
// completes, which must cover p-1 hops inside the n-p+1 steps the
// schedule allows it.
// MinAntiDiagonalStrideChecked validates n and p, returning an error
// for non-positive values (e.g. user-supplied sizes).
func MinAntiDiagonalStrideChecked(tgt Target, op tech.OpClass, bits int, n, p int) (int64, error) {
	tgt = tgt.withDefaults()
	if n <= 0 || p <= 0 {
		return 0, fmt.Errorf("fm: invalid domain %d or processor count %d", n, p)
	}
	if p == 1 {
		// Everything is co-located: the step only has to cover the op.
		return tgt.OpCycles(op, bits), nil
	}
	s := tgt.OpCycles(op, bits) + tgt.TransitCycles(1)
	slack := int64(n - p + 1)
	if slack < 1 {
		slack = 1
	}
	need := tgt.OpCycles(op, bits) + tgt.TransitCycles(p-1)
	if w := (need + slack - 1) / slack; w > s {
		s = w
	}
	return s, nil
}

// MinAntiDiagonalStride is MinAntiDiagonalStrideChecked for callers
// with statically known-good arguments; it panics on the errors the
// Checked variant would return.
func MinAntiDiagonalStride(tgt Target, op tech.OpClass, bits int, n, p int) int64 {
	s, err := MinAntiDiagonalStrideChecked(tgt, op, bits, n, p)
	if err != nil {
		//lint:allow panic(documented convenience wrapper; MinAntiDiagonalStrideChecked returns the error)
		panic(err.Error())
	}
	return s
}
