package noc

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
	"repro/internal/trace"
)

func testNet(mode Mode) *Network {
	return New(Config{
		Grid: geom.NewGrid(8, 8, 1.0),
		Tech: tech.N5(),
		Mode: mode,
	})
}

func TestRouteXY(t *testing.T) {
	n := testNet(CutThrough)
	r := n.Route(geom.Pt(1, 1), geom.Pt(3, 2))
	want := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 1), geom.Pt(3, 1), geom.Pt(3, 2)}
	if len(r) != len(want) {
		t.Fatalf("route len = %d, want %d (%v)", len(r), len(want), r)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("route[%d] = %v, want %v", i, r[i], want[i])
		}
	}
	// Route length always equals Manhattan distance + 1.
	for _, c := range []struct{ a, b geom.Point }{
		{geom.Pt(0, 0), geom.Pt(7, 7)},
		{geom.Pt(5, 2), geom.Pt(5, 2)},
		{geom.Pt(7, 0), geom.Pt(0, 7)},
	} {
		r := n.Route(c.a, c.b)
		if len(r) != c.a.Manhattan(c.b)+1 {
			t.Errorf("route %v->%v has %d points", c.a, c.b, len(r))
		}
		// Adjacent points differ by exactly one hop.
		for i := 1; i < len(r); i++ {
			if r[i-1].Manhattan(r[i]) != 1 {
				t.Errorf("route %v->%v not unit-stepped at %d", c.a, c.b, i)
			}
		}
	}
}

func TestUncontendedLatencyModes(t *testing.T) {
	ct := testNet(CutThrough)
	sf := testNet(StoreAndForward)
	per := ct.hopLatency() // 800 (wire/mm * 1mm pitch) + 100 (router)

	// Single-flit message: both modes identical.
	if a, b := ct.UncontendedLatency(4, 32), sf.UncontendedLatency(4, 32); a != b {
		t.Errorf("single flit: CT %g != SF %g", a, b)
	}
	if got := ct.UncontendedLatency(4, 32); got != 4*per {
		t.Errorf("CT 4 hops 1 flit = %g, want %g", got, 4*per)
	}
	// Multi-flit: SF pays serialization per hop, CT once.
	// 128 bits = 4 flits.
	ctLat := ct.UncontendedLatency(4, 128)
	sfLat := sf.UncontendedLatency(4, 128)
	if wantCT := 4*per + 3*per; ctLat != wantCT {
		t.Errorf("CT = %g, want %g", ctLat, wantCT)
	}
	if wantSF := 4 * (per + 3*per); sfLat != wantSF {
		t.Errorf("SF = %g, want %g", sfLat, wantSF)
	}
	if ctLat >= sfLat {
		t.Errorf("cut-through (%g) should beat store-and-forward (%g) on multi-flit", ctLat, sfLat)
	}
	// Zero hops is free.
	if l := ct.UncontendedLatency(0, 1024); l != 0 {
		t.Errorf("0 hops = %g", l)
	}
}

func TestMessageEnergyMatchesTech(t *testing.T) {
	n := testNet(CutThrough)
	p := tech.N5()
	// 3 hops x 1mm pitch of 32-bit wire + 3 hops of router switching.
	want := p.WireEnergy(32, 3) + 8*32*3
	if got := n.MessageEnergy(3, 32); math.Abs(got-want) > 1e-9 {
		t.Errorf("MessageEnergy = %g, want %g", got, want)
	}
}

func TestSendSelfIsFree(t *testing.T) {
	n := testNet(CutThrough)
	arr, e := n.Send(100, geom.Pt(2, 2), geom.Pt(2, 2), 64)
	if arr != 100 || e != 0 {
		t.Errorf("self-send = (%g, %g)", arr, e)
	}
	if s := n.Stats(); s.Messages != 0 {
		t.Errorf("self-send counted as message: %+v", s)
	}
}

func TestSendUncontendedMatchesFormula(t *testing.T) {
	for _, mode := range []Mode{CutThrough, StoreAndForward} {
		n := testNet(mode)
		src, dst := geom.Pt(0, 0), geom.Pt(3, 2)
		arr, e := n.Send(50, src, dst, 96)
		wantLat := n.UncontendedLatency(5, 96)
		if math.Abs(arr-(50+wantLat)) > 1e-9 {
			t.Errorf("%v: arrival = %g, want %g", mode, arr, 50+wantLat)
		}
		if wantE := n.MessageEnergy(5, 96); math.Abs(e-wantE) > 1e-9 {
			t.Errorf("%v: energy = %g, want %g", mode, e, wantE)
		}
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	n := testNet(CutThrough)
	// Two messages injected at t=0 share link (0,0)->(1,0).
	a1, _ := n.Send(0, geom.Pt(0, 0), geom.Pt(2, 0), 32)
	a2, _ := n.Send(0, geom.Pt(0, 0), geom.Pt(3, 0), 32)
	if a2 <= a1 {
		t.Errorf("second message (%g) should be delayed past first (%g)", a2, a1)
	}
	// Disjoint routes do not interfere.
	n2 := testNet(CutThrough)
	b1, _ := n2.Send(0, geom.Pt(0, 0), geom.Pt(1, 0), 32)
	b2, _ := n2.Send(0, geom.Pt(0, 7), geom.Pt(1, 7), 32)
	if b1 != b2 {
		t.Errorf("disjoint messages should have equal latency: %g vs %g", b1, b2)
	}
}

func TestContentionMonotoneInLoad(t *testing.T) {
	// Arrival of the k-th message over one link is nondecreasing in k,
	// and grows linearly once the link saturates.
	n := testNet(CutThrough)
	var last float64
	for k := 0; k < 10; k++ {
		arr, _ := n.Send(0, geom.Pt(0, 0), geom.Pt(1, 0), 128)
		if arr < last {
			t.Fatalf("arrival %g decreased below %g at message %d", arr, last, k)
		}
		last = arr
	}
	occ := float64(n.flits(128)) * n.hopLatency()
	wantLast := 9*occ + n.UncontendedLatency(1, 128)
	if math.Abs(last-wantLast) > 1e-6 {
		t.Errorf("10th arrival = %g, want %g", last, wantLast)
	}
}

func TestStatsAndReset(t *testing.T) {
	n := testNet(CutThrough)
	n.Send(0, geom.Pt(0, 0), geom.Pt(2, 0), 32) // 2 hops
	n.Send(0, geom.Pt(0, 0), geom.Pt(1, 0), 32) // 1 hop, shares first link
	s := n.Stats()
	if s.Messages != 2 {
		t.Errorf("Messages = %d", s.Messages)
	}
	if s.BitHops != 32*2+32*1 {
		t.Errorf("BitHops = %d", s.BitHops)
	}
	if s.MaxLinkBits != 64 {
		t.Errorf("MaxLinkBits = %d", s.MaxLinkBits)
	}
	if s.BusiestLinkFrom != geom.Pt(0, 0) || s.BusiestLinkTo != geom.Pt(1, 0) {
		t.Errorf("busiest link = %v->%v", s.BusiestLinkFrom, s.BusiestLinkTo)
	}
	if s.Energy <= 0 {
		t.Errorf("Energy = %g", s.Energy)
	}
	n.Reset()
	if s := n.Stats(); s.Messages != 0 || s.BitHops != 0 || s.Energy != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
	// After reset the link is free again.
	arr, _ := n.Send(0, geom.Pt(0, 0), geom.Pt(1, 0), 32)
	if arr != n.UncontendedLatency(1, 32) {
		t.Errorf("post-reset arrival = %g", arr)
	}
}

func TestSendTraces(t *testing.T) {
	tr := trace.New()
	n := New(Config{Grid: geom.NewGrid(4, 4, 1), Tech: tech.N5(), Trace: tr})
	n.Send(0, geom.Pt(0, 0), geom.Pt(3, 3), 32)
	if tr.Len() != 1 {
		t.Fatalf("trace len = %d", tr.Len())
	}
	e := tr.Events()[0]
	if e.Kind != trace.KindWire || e.Place != geom.Pt(0, 0) || e.Dst != geom.Pt(3, 3) {
		t.Errorf("bad trace event %+v", e)
	}
}

func TestDefaults(t *testing.T) {
	n := New(Config{Grid: geom.NewGrid(2, 2, 1), Tech: tech.N5()})
	cfg := n.Config()
	if cfg.LinkWidthBits != 32 || cfg.RouterDelayPS != 100 || cfg.RouterEnergyPerBit != 8 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestPanics(t *testing.T) {
	n := testNet(CutThrough)
	assertPanics(t, "off-grid src", func() { n.Send(0, geom.Pt(-1, 0), geom.Pt(0, 0), 32) })
	assertPanics(t, "off-grid dst", func() { n.Send(0, geom.Pt(0, 0), geom.Pt(8, 0), 32) })
	assertPanics(t, "zero bits", func() { n.Send(0, geom.Pt(0, 0), geom.Pt(1, 0), 0) })
	assertPanics(t, "negative time", func() { n.Send(-1, geom.Pt(0, 0), geom.Pt(1, 0), 32) })
	assertPanics(t, "bad tech", func() { New(Config{Grid: geom.NewGrid(2, 2, 1)}) })
}

func TestModeString(t *testing.T) {
	if CutThrough.String() != "cut-through" || StoreAndForward.String() != "store-and-forward" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
