package search

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fm"
	"repro/internal/tech"
)

func annealFixture(t *testing.T) (*fm.Graph, fm.Target) {
	t.Helper()
	g, _, err := fm.Recurrence{
		Name: "dp",
		Dims: []int{6, 6},
		Deps: [][]int{{1, 1}, {1, 0}, {0, 1}},
		Op:   tech.OpAdd,
		Bits: 32,
	}.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	tgt := fm.DefaultTarget(4, 1)
	tgt.MemWordsPerNode = 1 << 20
	return g, tgt
}

// TestCheckpointedRunMatchesPlainRun: writing checkpoints must not
// change the search result, and a run resumed from its own *final*
// checkpoint must return immediately with the same answer.
func TestCheckpointedRunMatchesPlainRun(t *testing.T) {
	g, tgt := annealFixture(t)
	opts := AnnealOptions{Iters: 400, Seed: 11, Chains: 3, ExchangeEvery: 100, Workers: 1}

	plainSched, plainCost := Anneal(g, tgt, opts)

	cpPath := filepath.Join(t.TempDir(), "anneal.ckpt")
	opts.CheckpointPath = cpPath
	ckptSched, ckptCost, err := AnnealResumable(g, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainSched, ckptSched) || plainCost != ckptCost {
		t.Fatal("checkpointing changed the search result")
	}

	opts.Resume = true
	resSched, resCost, err := AnnealResumable(g, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainSched, resSched) || plainCost != resCost {
		t.Fatal("resume from the final checkpoint diverged")
	}
}

// TestResumeFromMidRunBarrier is the crash-recovery contract: a search
// killed after any barrier and restarted with -resume must produce the
// same final mapping as the uninterrupted run. The mid-run snapshot is
// captured via the barrier hook (a copy of the checkpoint file as it
// existed right after the first barrier), exactly what a kill -9 between
// barriers would leave on disk.
func TestResumeFromMidRunBarrier(t *testing.T) {
	g, tgt := annealFixture(t)
	dir := t.TempDir()
	cpPath := filepath.Join(dir, "anneal.ckpt")
	midPath := filepath.Join(dir, "mid.ckpt")

	opts := AnnealOptions{Iters: 400, Seed: 7, Chains: 3, ExchangeEvery: 100, Workers: 2,
		CheckpointPath: cpPath}

	captured := false
	testBarrierHook = func(done int) {
		if !captured && done < opts.Iters {
			data, err := os.ReadFile(cpPath)
			if err != nil {
				t.Errorf("barrier hook: %v", err)
				return
			}
			if err := os.WriteFile(midPath, data, 0o644); err != nil {
				t.Errorf("barrier hook: %v", err)
				return
			}
			captured = true
		}
	}
	defer func() { testBarrierHook = nil }()

	fullSched, fullCost, err := AnnealResumable(g, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	testBarrierHook = nil
	if !captured {
		t.Fatal("no mid-run barrier checkpoint was captured")
	}

	mid, err := LoadCheckpoint(midPath)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Done <= 0 || mid.Done >= opts.Iters {
		t.Fatalf("captured checkpoint at done=%d, want strictly mid-run of %d", mid.Done, opts.Iters)
	}

	opts.CheckpointPath = midPath
	opts.Resume = true
	resSched, resCost, err := AnnealResumable(g, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fullSched, resSched) || fullCost != resCost {
		t.Fatalf("resumed run diverged: cost %+v vs %+v", resCost, fullCost)
	}
}

// TestSingleChainCheckpoints: with one chain there are no exchanges, but
// checkpoints must still land every ExchangeEvery iterations.
func TestSingleChainCheckpoints(t *testing.T) {
	g, tgt := annealFixture(t)
	cpPath := filepath.Join(t.TempDir(), "anneal.ckpt")
	opts := AnnealOptions{Iters: 300, Seed: 3, Chains: 1, ExchangeEvery: 100, Workers: 1,
		CheckpointPath: cpPath}

	barriers := 0
	testBarrierHook = func(int) { barriers++ }
	defer func() { testBarrierHook = nil }()

	ckptSched, ckptCost, err := AnnealResumable(g, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if barriers != 3 {
		t.Fatalf("1-chain run hit %d barriers, want 3", barriers)
	}
	opts.CheckpointPath = ""
	plainSched, plainCost, err := AnnealResumable(g, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainSched, ckptSched) || plainCost != ckptCost {
		t.Fatal("1-chain checkpointing changed the result")
	}
}

func TestResumeValidation(t *testing.T) {
	g, tgt := annealFixture(t)
	dir := t.TempDir()
	cpPath := filepath.Join(dir, "anneal.ckpt")
	opts := AnnealOptions{Iters: 200, Seed: 5, Chains: 2, ExchangeEvery: 100, Workers: 1,
		CheckpointPath: cpPath}
	if _, _, err := AnnealResumable(g, tgt, opts); err != nil {
		t.Fatal(err)
	}

	// Missing file.
	bad := opts
	bad.CheckpointPath = filepath.Join(dir, "nope.ckpt")
	bad.Resume = true
	if _, _, err := AnnealResumable(g, tgt, bad); err == nil {
		t.Error("resume from a missing checkpoint succeeded")
	}

	// Resume without a path.
	bad = opts
	bad.CheckpointPath = ""
	bad.Resume = true
	if _, _, err := AnnealResumable(g, tgt, bad); err == nil {
		t.Error("Resume without CheckpointPath succeeded")
	}

	// Mismatched options.
	for name, mutate := range map[string]func(*AnnealOptions){
		"seed":     func(o *AnnealOptions) { o.Seed++ },
		"iters":    func(o *AnnealOptions) { o.Iters *= 2 },
		"chains":   func(o *AnnealOptions) { o.Chains++ },
		"exchange": func(o *AnnealOptions) { o.ExchangeEvery = 50 },
	} {
		mismatched := opts
		mismatched.Resume = true
		mutate(&mismatched)
		if _, _, err := AnnealResumable(g, tgt, mismatched); err == nil {
			t.Errorf("resume with mismatched %s succeeded", name)
		}
	}

	// Mismatched target.
	tgt2 := tgt
	tgt2.Grid.PitchMM = 3
	mismatched := opts
	mismatched.Resume = true
	if _, _, err := AnnealResumable(g, tgt2, mismatched); err == nil {
		t.Error("resume with a different target succeeded")
	}

	// Torn file.
	if err := os.WriteFile(cpPath, []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	mismatched = opts
	mismatched.Resume = true
	if _, _, err := AnnealResumable(g, tgt, mismatched); err == nil {
		t.Error("resume from a torn checkpoint succeeded")
	}
}

func TestSaveCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	cp := &Checkpoint{Version: checkpointVersion, Done: 42}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	// Overwrite with new content; no temp droppings may remain.
	cp.Done = 99
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Done != 99 {
		t.Fatalf("loaded Done=%d, want 99", got.Done)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries, want 1 (no temp files)", len(entries))
	}
}
