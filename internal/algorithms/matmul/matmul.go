// Package matmul expresses dense matrix multiplication as an F&M
// function and maps it onto the archetypal 2-D systolic array — the
// design the panel paper reaches for when it says algorithms expressed
// as function + mapping lower directly to hardware ("systolic arrays"
// among the communication-conscious designs Dally lists). Output element
// (i,j) accumulates in place at PE (i,j); A streams in from the west
// edge, B from the north edge; the wavefront time i+j+k makes every
// dependence nearest-neighbour or in-place.
package matmul

import (
	"fmt"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/tech"
)

// MatMul is the materialized function C = A*B for n x n matrices: one
// multiply-accumulate node per (i,j,k).
type MatMul struct {
	Graph *fm.Graph
	// A[i*n+k] and B[k*n+j] are the input nodes.
	A, B []fm.NodeID
	// Out[i*n+j] produces C[i][j].
	Out []fm.NodeID
	mac [][]fm.NodeID // mac[i*n+j][k]
	N   int
}

// Build constructs the function for n x n matrices.
func Build(n int) *MatMul {
	if n <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("matmul: invalid size %d", n))
	}
	b := fm.NewBuilder(fmt.Sprintf("matmul%d", n))
	m := &MatMul{N: n}
	m.A = make([]fm.NodeID, n*n)
	m.B = make([]fm.NodeID, n*n)
	for i := range m.A {
		m.A[i] = b.Input(32)
	}
	for i := range m.B {
		m.B[i] = b.Input(32)
	}
	m.mac = make([][]fm.NodeID, n*n)
	m.Out = make([]fm.NodeID, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cell := make([]fm.NodeID, n)
			for k := 0; k < n; k++ {
				deps := []fm.NodeID{m.A[i*n+k], m.B[k*n+j]}
				if k > 0 {
					deps = append(deps, cell[k-1])
				}
				nd := b.Op(tech.OpFMA, 32, deps...)
				b.Label(nd, "mac(%d,%d,%d)", i, j, k)
				cell[k] = nd
			}
			m.mac[i*n+j] = cell
			m.Out[i*n+j] = cell[n-1]
			b.MarkOutput(cell[n-1])
		}
	}
	m.Graph = b.Build()
	return m
}

// Interpret runs the function semantically: a and b are row-major n x n
// int64 matrices; the result is row-major C = A*B.
func (m *MatMul) Interpret(a, b []int64) []int64 {
	n := m.N
	if len(a) != n*n || len(b) != n*n {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("matmul: inputs %d/%d for n=%d", len(a), len(b), n))
	}
	inputs := append(append([]int64(nil), a...), b...)
	vals, err := fm.Interpret(m.Graph, inputs, func(nd fm.NodeID, deps []int64) int64 {
		acc := deps[0] * deps[1]
		if len(deps) == 3 {
			acc += deps[2]
		}
		return acc
	})
	if err != nil {
		//lint:allow panic(unreachable: arity checked immediately above)
		panic(err) // arity checked above
	}
	out := make([]int64, n*n)
	for i, nd := range m.Out {
		out[i] = vals[nd]
	}
	return out
}

// Reference computes C = A*B directly.
func Reference(a, b []int64, n int) []int64 {
	if len(a) != n*n || len(b) != n*n {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("matmul: inputs %d/%d for n=%d", len(a), len(b), n))
	}
	c := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c
}

// Systolic maps the function onto an n x n output-stationary array:
// mac(i,j,k) runs at PE (j,i) [grid x = column j, y = row i] at wavefront
// step i+j+k; A[i][k] enters at the west edge of row i at step i+k,
// B[k][j] at the north edge of column j at step k+j. Every dependence is
// in-place or rides the wavefront, so one step of slack per hop suffices.
func (m *MatMul) Systolic(tgt fm.Target) fm.Schedule {
	n := m.N
	if tgt.Grid.Width < n || tgt.Grid.Height < n {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("matmul: systolic needs an %dx%d grid, have %dx%d",
			n, n, tgt.Grid.Width, tgt.Grid.Height))
	}
	s := tgt.OpCycles(tech.OpFMA, 32)
	if h := tgt.TransitCycles(1); h > s {
		s = h
	}
	sched := make(fm.Schedule, m.Graph.NumNodes())
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			sched[m.A[i*n+k]] = fm.Assignment{Place: geom.Pt(0, i), Time: int64(i+k) * s}
		}
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			sched[m.B[k*n+j]] = fm.Assignment{Place: geom.Pt(j, 0), Time: int64(k+j) * s}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				sched[m.mac[i*n+j][k]] = fm.Assignment{
					Place: geom.Pt(j, i),
					Time:  int64(i+j+k+1) * s,
				}
			}
		}
	}
	return sched
}

// Serial maps the function onto one node.
func (m *MatMul) Serial(tgt fm.Target) fm.Schedule {
	return fm.SerialSchedule(m.Graph, tgt, geom.Pt(0, 0))
}

// Traffic attributes a schedule's bit-hops to the three tensors.
type Traffic struct {
	A, B, Partials int64
}

// AttributeTraffic splits a mapping's communication by tensor.
func (m *MatMul) AttributeTraffic(sched fm.Schedule) Traffic {
	inA := make(map[fm.NodeID]bool, len(m.A))
	for _, nd := range m.A {
		inA[nd] = true
	}
	inB := make(map[fm.NodeID]bool, len(m.B))
	for _, nd := range m.B {
		inB[nd] = true
	}
	return Traffic{
		A: fm.TrafficFrom(m.Graph, sched, func(n fm.NodeID) bool { return inA[n] }),
		B: fm.TrafficFrom(m.Graph, sched, func(n fm.NodeID) bool { return inB[n] }),
		Partials: fm.TrafficFrom(m.Graph, sched, func(n fm.NodeID) bool {
			return !m.Graph.IsInput(n)
		}),
	}
}
