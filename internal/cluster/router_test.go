package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// routeBody is a minimal routable request: a graph fingerprint plus a
// target, enough for serve.RouteKey without a shard round-trip.
const routeBody = `{"graph_fp": "deadbeefcafe", "target": {"width": 4}}`

// shardFleet is a set of stub shards with settable response codes and
// drain states — the router's counterpart of serve's fake clock: every
// failure mode on demand, no real mapd process.
type shardFleet struct {
	urls     []string
	status   []*atomic.Int64
	draining []*atomic.Bool
}

func newShardFleet(t *testing.T, n int) *shardFleet {
	t.Helper()
	f := &shardFleet{}
	for i := 0; i < n; i++ {
		st := &atomic.Int64{}
		st.Store(http.StatusOK)
		dr := &atomic.Bool{}
		f.status = append(f.status, st)
		f.draining = append(f.draining, dr)
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if r.URL.Path == "/healthz" {
				if dr.Load() {
					w.WriteHeader(http.StatusServiceUnavailable)
					fmt.Fprint(w, `{"status": "draining", "state": "draining"}`)
					return
				}
				fmt.Fprint(w, `{"status": "ok", "state": "ready"}`)
				return
			}
			w.WriteHeader(int(st.Load()))
			fmt.Fprintf(w, `{"shard": %d}`, i)
		}))
		t.Cleanup(srv.Close)
		f.urls = append(f.urls, srv.URL)
	}
	return f
}

// newTestRouter builds a router with hedging off and a frozen clock —
// each test turns on exactly the machinery it exercises.
func newTestRouter(t *testing.T, shards []string, override func(*Config)) (*Router, *obs.Registry) {
	t.Helper()
	htr := &http.Transport{}
	t.Cleanup(htr.CloseIdleConnections)
	reg := obs.New()
	cfg := Config{
		Shards:       shards,
		Replicas:     2,
		HedgeDelay:   -1,
		ProbeTimeout: time.Second,
		Clock:        NewFakeClock(time.Unix(2000, 0)),
		Client:       &http.Client{Transport: htr},
		Obs:          reg,
	}
	if override != nil {
		override(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt, reg
}

func counter(reg *obs.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

// do runs one request through the router handler.
func do(rt *Router, method, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rt.Handler().ServeHTTP(rec, req)
	return rec
}

// replicaSet resolves routeBody's primary and backup on rt's ring.
func replicaSet(t *testing.T, rt *Router) (primary, backup int) {
	t.Helper()
	key, err := serve.RouteKey([]byte(routeBody))
	if err != nil {
		t.Fatalf("RouteKey: %v", err)
	}
	owners := rt.ring.Owners(key, 2)
	return owners[0], owners[1]
}

func TestForwardFailover(t *testing.T) {
	fleet := newShardFleet(t, 2)
	rt, reg := newTestRouter(t, fleet.urls, nil)
	primary, backup := replicaSet(t, rt)

	// Primary answers 500: the client sees the backup's 200, never the
	// failure, and the failover is counted and attributed.
	fleet.status[primary].Store(http.StatusInternalServerError)
	rec := do(rt, "POST", "/v1/eval", routeBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover request: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cluster-Shard"); got != strconv.Itoa(backup) {
		t.Fatalf("served by shard %s, want backup %d", got, backup)
	}
	if got := rec.Header().Get("X-Cluster-Primary"); got != strconv.Itoa(primary) {
		t.Fatalf("primary header %s, want %d", got, primary)
	}
	if n := counter(reg, "cluster.failovers"); n != 1 {
		t.Fatalf("failovers = %d, want 1", n)
	}
	if rt.health.healthy(primary) {
		t.Fatalf("failed primary must be marked down")
	}

	// Primary recovers but is still down-marked: traffic keeps flowing to
	// the backup (no 500 risked on a shard the router believes is dead),
	// and that detour is still a failover.
	fleet.status[primary].Store(http.StatusOK)
	rec = do(rt, "POST", "/v1/eval", routeBody)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cluster-Shard") != strconv.Itoa(backup) {
		t.Fatalf("down-marked primary must be skipped: status %d shard %s", rec.Code, rec.Header().Get("X-Cluster-Shard"))
	}
	if n := counter(reg, "cluster.failovers"); n != 2 {
		t.Fatalf("failovers = %d, want 2", n)
	}

	// A probe observes the recovery; traffic returns to the primary and
	// the failover counter stops moving.
	if rec := do(rt, "POST", "/v1/probe", ""); rec.Code != http.StatusOK {
		t.Fatalf("probe: %d", rec.Code)
	}
	rec = do(rt, "POST", "/v1/eval", routeBody)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cluster-Shard") != strconv.Itoa(primary) {
		t.Fatalf("recovered primary must serve again: status %d shard %s", rec.Code, rec.Header().Get("X-Cluster-Shard"))
	}
	if n := counter(reg, "cluster.failovers"); n != 2 {
		t.Fatalf("failovers moved to %d after recovery, want 2", n)
	}
}

func Test4xxPassesThroughWithoutFailover(t *testing.T) {
	fleet := newShardFleet(t, 2)
	rt, reg := newTestRouter(t, fleet.urls, nil)
	primary, _ := replicaSet(t, rt)

	// A 4xx is the shard's deterministic verdict about the request;
	// retrying it on a replica would just refuse twice.
	fleet.status[primary].Store(http.StatusUnprocessableEntity)
	rec := do(rt, "POST", "/v1/eval", routeBody)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 relayed", rec.Code)
	}
	if got := rec.Header().Get("X-Cluster-Shard"); got != strconv.Itoa(primary) {
		t.Fatalf("served by %s, want primary %d", got, primary)
	}
	if n := counter(reg, "cluster.failovers"); n != 0 {
		t.Fatalf("failovers = %d, want 0", n)
	}
	if !rt.health.healthy(primary) {
		t.Fatalf("a 4xx must not mark the shard down")
	}
}

func TestAllReplicasDownIs502(t *testing.T) {
	fleet := newShardFleet(t, 2)
	rt, reg := newTestRouter(t, fleet.urls, nil)
	for _, st := range fleet.status {
		st.Store(http.StatusInternalServerError)
	}
	rec := do(rt, "POST", "/v1/eval", routeBody)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 when every replica failed", rec.Code)
	}
	if n := counter(reg, "cluster.no_replica"); n != 1 {
		t.Fatalf("no_replica = %d, want 1", n)
	}
}

func TestUnroutableBodyIs422(t *testing.T) {
	fleet := newShardFleet(t, 2)
	rt, _ := newTestRouter(t, fleet.urls, nil)
	rec := do(rt, "POST", "/v1/eval", `{"target": {"width": 4}}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 for a body with no graph identity", rec.Code)
	}
}

func TestRouterDraining(t *testing.T) {
	fleet := newShardFleet(t, 2)
	rt, reg := newTestRouter(t, fleet.urls, nil)
	rt.Drain()
	rec := do(rt, "POST", "/v1/eval", routeBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 while draining", rec.Code)
	}
	if n := counter(reg, "cluster.refused"); n != 1 {
		t.Fatalf("refused = %d, want 1", n)
	}
	rec = do(rt, "GET", "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503 while draining", rec.Code)
	}
	var h routerHealthz
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil || h.State != "draining" {
		t.Fatalf("healthz body %q (err %v), want state draining", rec.Body.String(), err)
	}
}

func TestProbeSeesDrainingShard(t *testing.T) {
	fleet := newShardFleet(t, 2)
	rt, _ := newTestRouter(t, fleet.urls, nil)
	primary, backup := replicaSet(t, rt)

	// The shard starts its shutdown: readiness flips to draining, and the
	// next probe reroutes its keys before any forward has to fail.
	fleet.draining[primary].Store(true)
	if rec := do(rt, "POST", "/v1/probe", ""); rec.Code != http.StatusOK {
		t.Fatalf("probe: %d", rec.Code)
	}
	rec := do(rt, "GET", "/healthz", "")
	var h routerHealthz
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if h.Shards[primary].Up || h.Shards[primary].Reason != "draining" {
		t.Fatalf("draining shard state = %+v, want down/draining", h.Shards[primary])
	}
	rec = do(rt, "POST", "/v1/eval", routeBody)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cluster-Shard") != strconv.Itoa(backup) {
		t.Fatalf("draining primary must be bypassed: status %d shard %s", rec.Code, rec.Header().Get("X-Cluster-Shard"))
	}
}
