package comm

import (
	"math"
	"testing"
)

func TestSendRecvRoundTrip(t *testing.T) {
	m := New(2, DefaultCost())
	m.Send(0, 1, "x", []float64{1, 2, 3})
	m.EndRound()
	got := m.Recv(1, 0, "x")
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("payload = %v", got)
	}
	m.EndRound()
	mt := m.Metrics()
	if mt.TotalWords != 3 || mt.TotalMsgs != 1 || mt.Rounds != 2 {
		t.Errorf("metrics = %+v", mt)
	}
	if mt.MaxRankWords != 3 {
		t.Errorf("MaxRankWords = %d", mt.MaxRankWords)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	m := New(2, DefaultCost())
	buf := []float64{7}
	m.Send(0, 1, "x", buf)
	buf[0] = 99
	m.EndRound()
	if got := m.Recv(1, 0, "x"); got[0] != 7 {
		t.Errorf("payload aliased sender buffer: %v", got)
	}
}

func TestMessagesDeliverAtRoundBoundary(t *testing.T) {
	m := New(2, DefaultCost())
	m.Send(0, 1, "x", []float64{1})
	assertPanics(t, "early recv", func() { m.Recv(1, 0, "x") })
	m.EndRound()
	m.Recv(1, 0, "x")
}

func TestFIFOPerChannel(t *testing.T) {
	m := New(2, DefaultCost())
	m.Send(0, 1, "x", []float64{1})
	m.Send(0, 1, "x", []float64{2})
	m.EndRound()
	if m.Recv(1, 0, "x")[0] != 1 || m.Recv(1, 0, "x")[0] != 2 {
		t.Error("channel not FIFO")
	}
}

func TestTimeModelChargesSlowestRank(t *testing.T) {
	cost := Cost{Alpha: 1, Beta: 10, Gamma: 100}
	m := New(3, cost)
	m.Send(0, 1, "x", make([]float64, 5))
	m.Send(0, 2, "x", make([]float64, 2))
	m.EndRound() // no receives yet: free round
	m.Recv(1, 0, "x")
	m.Recv(2, 0, "x")
	m.Flops(2, 7)
	m.EndRound()
	// Round 2: max recv words = 5 (rank 1), max msgs = 1, max flops = 7.
	want := 1.0*1 + 10.0*5 + 100.0*7
	if got := m.Metrics().Time; math.Abs(got-want) > 1e-12 {
		t.Errorf("time = %g, want %g", got, want)
	}
}

func TestUndeliveredMessages(t *testing.T) {
	m := New(2, DefaultCost())
	if got := m.UndeliveredMessages(); len(got) != 0 {
		t.Errorf("fresh machine: %v", got)
	}
	m.Send(0, 1, "a", []float64{1})
	if got := m.UndeliveredMessages(); len(got) != 1 {
		t.Errorf("pending: %v", got)
	}
	m.EndRound()
	if got := m.UndeliveredMessages(); len(got) != 1 {
		t.Errorf("unreceived: %v", got)
	}
	m.Recv(1, 0, "a")
	if got := m.UndeliveredMessages(); len(got) != 0 {
		t.Errorf("drained: %v", got)
	}
}

func TestMachinePanics(t *testing.T) {
	m := New(2, DefaultCost())
	assertPanics(t, "bad p", func() { New(0, DefaultCost()) })
	assertPanics(t, "self send", func() { m.Send(1, 1, "x", nil) })
	assertPanics(t, "bad rank", func() { m.Send(0, 5, "x", nil) })
	assertPanics(t, "missing msg", func() { m.Recv(0, 1, "nope") })
	assertPanics(t, "negative flops", func() { m.Flops(0, -1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
