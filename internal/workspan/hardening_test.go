package workspan

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerPanicSurfacesAsError is the headline robustness contract: a
// panic in one For segment becomes the call's error (not a process
// crash), and the pool keeps scheduling afterwards.
func TestWorkerPanicSurfacesAsError(t *testing.T) {
	for _, mode := range []Mode{WorkStealing, CentralQueue} {
		for _, workers := range []int{1, 4} {
			withPool(t, workers, mode, func(p *Pool) {
				err := p.For(0, 100, 3, func(lo, hi int) {
					if lo <= 41 && 41 < hi {
						panic("segment 41 exploded")
					}
				})
				if err == nil {
					t.Fatalf("%v/%d: panic completed silently", mode, workers)
				}
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("%v/%d: error is %T, want *PanicError", mode, workers, err)
				}
				if pe.Value != "segment 41 exploded" || len(pe.Stack) == 0 {
					t.Fatalf("%v/%d: bad PanicError: value=%v stack=%dB", mode, workers, pe.Value, len(pe.Stack))
				}
				if !strings.Contains(pe.Error(), "segment 41 exploded") {
					t.Fatalf("%v/%d: Error() does not mention panic value: %s", mode, workers, pe.Error())
				}

				// The pool survives: the next run covers its range exactly once.
				var hits [64]int32
				if err := p.For(0, 64, 5, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				}); err != nil {
					t.Fatalf("%v/%d: pool broken after panic: %v", mode, workers, err)
				}
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("%v/%d: index %d visited %d times after panic", mode, workers, i, h)
					}
				}
			})
		}
	}
}

// TestPanicStillJoinsSpawnedChild runs under -race in CI: if Do's panic
// path returned while b was still in flight, b's write to after would
// race with the read below.
func TestPanicStillJoinsSpawnedChild(t *testing.T) {
	withPool(t, 4, WorkStealing, func(p *Pool) {
		var after int64
		err := p.Run(func(c *Ctx) {
			c.Do(
				func(*Ctx) { panic("a dies") },
				func(*Ctx) {
					time.Sleep(2 * time.Millisecond)
					atomic.StoreInt64(&after, 42)
				},
			)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PanicError", err)
		}
		// b either ran to completion before the join or was skipped as
		// cancelled; both are fine — what is forbidden is running after
		// Run returned, which the race detector checks via `after`.
		_ = atomic.LoadInt64(&after)
	})
}

func TestFirstOfSeveralPanicsWins(t *testing.T) {
	withPool(t, 4, WorkStealing, func(p *Pool) {
		err := p.For(0, 32, 1, func(lo, hi int) {
			panic(lo)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PanicError", err)
		}
		if _, ok := pe.Value.(int); !ok {
			t.Fatalf("panic value %v is not one of the segment indices", pe.Value)
		}
	})
}

func TestContextCancelBeforeRun(t *testing.T) {
	withPool(t, 2, WorkStealing, func(p *Pool) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := false
		err := p.RunWith(RunOptions{Context: ctx}, func(c *Ctx) { ran = true })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if ran {
			t.Fatal("body ran despite pre-cancelled context")
		}
	})
}

func TestContextCancelMidRunSkipsRemainingTasks(t *testing.T) {
	// One worker makes the schedule sequential: the first segment
	// cancels, every segment not yet started must be skipped.
	withPool(t, 1, WorkStealing, func(p *Pool) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		const n, grain = 1024, 4
		var visited int32
		err := p.RunWith(RunOptions{Context: ctx}, func(c *Ctx) {
			For(c, 0, n, grain, func(lo, hi int) {
				atomic.AddInt32(&visited, int32(hi-lo))
				cancel()
			})
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if v := atomic.LoadInt32(&visited); v >= n {
			t.Fatalf("cancellation skipped nothing: visited %d of %d", v, n)
		}
	})
}

func TestTaskTimeout(t *testing.T) {
	withPool(t, 2, WorkStealing, func(p *Pool) {
		err := p.RunWith(RunOptions{TaskTimeout: time.Millisecond}, func(c *Ctx) {
			time.Sleep(20 * time.Millisecond)
		})
		if !errors.Is(err, ErrTaskTimeout) {
			t.Fatalf("err = %v, want ErrTaskTimeout", err)
		}
		// A run that fits its deadline is untouched.
		if err := p.RunWith(RunOptions{TaskTimeout: time.Minute}, func(c *Ctx) {}); err != nil {
			t.Fatalf("fast run failed: %v", err)
		}
	})
}

func TestCtxErrReportsCancellation(t *testing.T) {
	withPool(t, 2, WorkStealing, func(p *Pool) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var sawErr atomic.Bool
		err := p.RunWith(RunOptions{Context: ctx}, func(c *Ctx) {
			if c.Err() != nil {
				t.Error("Err non-nil before any failure")
			}
			cancel()
			deadline := time.Now().Add(time.Second)
			for c.Err() == nil && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
			sawErr.Store(c.Err() != nil)
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !sawErr.Load() {
			t.Fatal("body never observed cancellation via Ctx.Err")
		}
	})
}
