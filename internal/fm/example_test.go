package fm_test

import (
	"fmt"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Example prices one function under two mappings: the serial projection
// moves nothing; the two-node mapping pays the paper's 160x wire premium
// per millimetre.
func Example() {
	b := fm.NewBuilder("pair-sum")
	x := b.Input(32)
	y := b.Input(32)
	sum := b.Op(tech.OpAdd, 32, x, y)
	b.MarkOutput(sum)
	g := b.Build()

	tgt := fm.DefaultTarget(2, 1) // two nodes, 1 mm apart, 5 nm constants

	serial := fm.SerialSchedule(g, tgt, geom.Pt(0, 0))
	cs, _ := fm.Evaluate(g, serial, tgt, fm.EvalOptions{})

	split := fm.Schedule{
		{Place: geom.Pt(0, 0), Time: 0}, // x at node 0
		{Place: geom.Pt(1, 0), Time: 0}, // y at node 1
		{Place: geom.Pt(0, 0), Time: 9}, // add waits one hop (9 cycles)
	}
	cp, _ := fm.Evaluate(g, split, tgt, fm.EvalOptions{})

	fmt.Printf("serial: compute=%.0ffJ wire=%.0ffJ\n", cs.ComputeEnergy, cs.WireEnergy)
	fmt.Printf("split:  compute=%.0ffJ wire=%.0ffJ (one 32-bit word, one hop)\n",
		cp.ComputeEnergy, cp.WireEnergy)
	fmt.Printf("wire/add ratio: %.0fx\n", cp.WireEnergy/cp.ComputeEnergy)
	// Output:
	// serial: compute=16fJ wire=0fJ
	// split:  compute=16fJ wire=2816fJ (one 32-bit word, one hop)
	// wire/add ratio: 176x
}

// ExampleCheck shows the legality checker rejecting a mapping that
// ignores transit time, with a typed, actionable error.
func ExampleCheck() {
	b := fm.NewBuilder("bad")
	in := b.Input(32)
	op := b.Op(tech.OpAdd, 32, in)
	b.MarkOutput(op)
	g := b.Build()

	tgt := fm.DefaultTarget(4, 1)
	sched := fm.Schedule{
		{Place: geom.Pt(0, 0), Time: 0},
		{Place: geom.Pt(3, 0), Time: 5}, // 3 hops away needs 27 cycles
	}
	fmt.Println(fm.Check(g, sched, tgt))
	// Output:
	// fm: causality violated: node 1 starts at cycle 5 but its input from node 0 (3 hops away) is only ready at cycle 27
}

// ExampleRecurrence materializes the paper's edit-distance dependence
// structure and maps it with the paper's own fragment.
func ExampleRecurrence() {
	rec := fm.Recurrence{
		Name: "H",
		Dims: []int{8, 8},
		Deps: [][]int{{1, 1}, {1, 0}, {0, 1}},
		Op:   tech.OpAdd,
		Bits: 32,
	}
	g, dom, _ := rec.Materialize()

	tgt := fm.DefaultTarget(4, 1)
	tgt.MemWordsPerNode = 1 << 16
	stride := fm.MinAntiDiagonalStride(tgt, tech.OpAdd, 32, 8, 4)
	sched := fm.AntiDiagonalSchedule(dom, 4, stride, geom.Pt(0, 0))

	fmt.Printf("cells: %d, longest chain: %d\n", g.CountOps(), g.Depth())
	fmt.Printf("legal: %v, places used: %d\n", fm.Check(g, sched, tgt) == nil, sched.PlacesUsed())
	// Output:
	// cells: 64, longest chain: 15
	// legal: true, places used: 4
}
