package fm

import (
	"testing"

	"repro/internal/tech"
)

func TestDefaultTarget(t *testing.T) {
	tgt := DefaultTarget(8, 1)
	if tgt.Grid.Nodes() != 8 || tgt.Grid.PitchMM != 1.0 {
		t.Errorf("grid = %+v", tgt.Grid)
	}
	if tgt.CyclePS != 100 || tgt.WordBits != 32 || tgt.IssueWidth != 1 {
		t.Errorf("defaults = %+v", tgt)
	}
	if err := tgt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpCycles(t *testing.T) {
	tgt := DefaultTarget(4, 4)
	if c := tgt.OpCycles(tech.OpAdd, 32); c != 2 { // 200ps / 100ps
		t.Errorf("add cycles = %d, want 2", c)
	}
	if c := tgt.OpCycles(tech.OpMul, 32); c != 6 { // 600ps / 100ps
		t.Errorf("mul cycles = %d, want 6", c)
	}
	// Never below one cycle.
	tgt.CyclePS = 1e6
	if c := tgt.OpCycles(tech.OpAdd, 32); c != 1 {
		t.Errorf("clamped cycles = %d, want 1", c)
	}
}

func TestHopAndTransitCycles(t *testing.T) {
	tgt := DefaultTarget(4, 4)
	if h := tgt.HopCycles(); h != 9 { // (800 wire + 100 router) / 100
		t.Errorf("hop cycles = %d, want 9", h)
	}
	if tr := tgt.TransitCycles(3); tr != 27 {
		t.Errorf("transit(3) = %d", tr)
	}
	if tr := tgt.TransitCycles(0); tr != 0 {
		t.Errorf("transit(0) = %d", tr)
	}
	if tr := tgt.TransitCycles(-1); tr != 0 {
		t.Errorf("transit(-1) = %d", tr)
	}
}

func TestWireEnergy(t *testing.T) {
	tgt := DefaultTarget(4, 4)
	// 32 bits over 2 hops at 1mm pitch: 80*32*2 wire + 8*32*2 router.
	want := 80.0*32*2 + 8*32*2
	if e := tgt.WireEnergy(32, 2); e != want {
		t.Errorf("WireEnergy = %g, want %g", e, want)
	}
	if e := tgt.WireEnergy(32, 0); e != 0 {
		t.Errorf("zero hops = %g", e)
	}
}

func TestOffChipCycles(t *testing.T) {
	tgt := DefaultTarget(4, 4)
	if c := tgt.OffChipCycles(); c != 300 { // 30,000 ps / 100
		t.Errorf("off-chip cycles = %d", c)
	}
}

func TestWords(t *testing.T) {
	tgt := DefaultTarget(2, 2)
	cases := map[int]int{1: 1, 32: 1, 33: 2, 64: 2, 65: 3}
	for bits, want := range cases {
		if got := tgt.Words(bits); got != want {
			t.Errorf("Words(%d) = %d, want %d", bits, got, want)
		}
	}
}

func TestTargetValidate(t *testing.T) {
	tgt := DefaultTarget(2, 2)
	tgt.CyclePS = -1
	if err := tgt.Validate(); err == nil {
		t.Error("expected error for negative cycle")
	}
	tgt = DefaultTarget(2, 2)
	tgt.Tech.AddEnergyPerBit = 0
	if err := tgt.Validate(); err == nil {
		t.Error("expected error for bad tech")
	}
}
