package replay

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/trace"
)

func obsFixture(t *testing.T, n, p int) (*fm.Graph, fm.Schedule, fm.Target) {
	t.Helper()
	g, dom, err := fm.Recurrence{
		Name: "edit",
		Dims: []int{n, n},
		Deps: [][]int{{1, 1}, {1, 0}, {0, 1}},
		Op:   tech.OpAdd,
		Bits: 32,
	}.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	tgt := fm.DefaultTarget(p, 1)
	tgt.MemWordsPerNode = 1 << 20
	stride := fm.MinAntiDiagonalStride(tgt, tech.OpAdd, 32, n, p)
	return g, fm.AntiDiagonalSchedule(dom, p, stride, geom.Pt(0, 0)), tgt
}

// TestObservabilityDoesNotChangeReplay is the acceptance check: the same
// replay with a nil registry and with a live one must produce identical
// metrics and a byte-for-byte identical trace (faulted or not).
func TestObservabilityDoesNotChangeReplay(t *testing.T) {
	g, sched, tgt := obsFixture(t, 8, 4)
	for _, rate := range []float64{0, 0.25} {
		run := func(r *obs.Registry) (string, string) {
			var inj *fault.Injector
			if rate > 0 {
				var err error
				if inj, err = fault.New(fault.Config{Seed: 11, Rate: rate}); err != nil {
					t.Fatal(err)
				}
			}
			tr := trace.New()
			m := ObservedMachineFor(tgt, inj, tr, r)
			met, err := Run(g, sched, tgt, m)
			if err != nil {
				t.Fatal(err)
			}
			return trace.ChromeTraceString(tr, tgt.Grid), formatMetrics(met)
		}
		traceOff, metOff := run(nil)
		traceOn, metOn := run(obs.New())
		if traceOff != traceOn {
			t.Fatalf("rate %g: observability changed the trace", rate)
		}
		if metOff != metOn {
			t.Fatalf("rate %g: observability changed metrics:\n%s\nvs\n%s", rate, metOff, metOn)
		}
	}
}

// TestObsCountsMatchMetrics checks the registry against the machine's own
// accounting: per-kind event counts equal the trace summary, per-kind
// energy equals Metrics().EnergyByKind, and fault counters equal the
// injector's stats.
func TestObsCountsMatchMetrics(t *testing.T) {
	g, sched, tgt := obsFixture(t, 8, 4)
	inj, err := fault.New(fault.Config{Seed: 3, Rate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.New()
	tr := trace.New()
	m := ObservedMachineFor(tgt, inj, tr, r)
	met, err := Run(g, sched, tgt, m)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	sum := tr.Summarize()

	for k := 0; k < trace.NumKinds; k++ {
		kind := trace.Kind(k)
		name := kind.String()
		// Wire events are recorded by the NoC, not machine.record; fault
		// events come from both the machine (stalls) and the NoC (spikes,
		// drops), so only machine-recorded kinds are compared here.
		if kind == trace.KindWire || kind == trace.KindFault {
			continue
		}
		if got, want := snap.Counters["machine.events."+name], int64(sum.CountByKind[kind]); got != want {
			t.Errorf("machine.events.%s = %d, trace says %d", name, got, want)
		}
		if got, want := snap.Gauges["machine.energy_fj."+name], met.EnergyByKind[kind]; got != want {
			t.Errorf("machine.energy_fj.%s = %g, metrics say %g", name, got, want)
		}
	}
	if got := snap.Counters["noc.messages"]; got != met.Messages {
		t.Errorf("noc.messages = %d, metrics say %d", got, met.Messages)
	}
	fs := inj.Stats()
	if got := snap.Counters["fault.stalls"]; got != fs.Stalls {
		t.Errorf("fault.stalls = %d, injector says %d", got, fs.Stalls)
	}
	if got := snap.Counters["fault.drops"]; got != fs.Drops {
		t.Errorf("fault.drops = %d, injector says %d", got, fs.Drops)
	}
	if got := snap.Counters["fault.retries"]; got != fs.Retries {
		t.Errorf("fault.retries = %d, injector says %d", got, fs.Retries)
	}
	if got := snap.Gauges["fault.injected_ps"]; got != fs.InjectedPS() {
		t.Errorf("fault.injected_ps = %g, injector says %g", got, fs.InjectedPS())
	}
	if fs.Events() == 0 {
		t.Error("fixture injected no faults; counters unexercised")
	}
}

// formatMetrics renders metrics for equality comparison; fmt prints map
// keys in sorted order, so the rendering is deterministic.
func formatMetrics(m machine.Metrics) string { return fmt.Sprintf("%+v", m) }
