// Package prof wraps runtime/pprof for the command-line tools: a CPU
// profile that runs for the life of the process and a heap snapshot
// written at exit. Both are opt-in via flags (-cpuprofile/-memprofile)
// and cost nothing when the paths are empty.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns a stop
// function to defer. An empty path is a no-op with a nil-safe stop.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path, forcing a GC first so the
// numbers reflect live memory. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}
