// Package obs is the repo's observability substrate: a dependency-free,
// concurrency-safe metrics registry holding named counters, gauges,
// fixed-bucket histograms, and timers, with a deterministic JSON
// snapshot. The panel paper's F&M argument is that explicit mappings
// make cost *predictable*; prediction is only checkable when the
// simulators can report what they actually did — how hot each NoC link
// ran, what the eval-cache hit rate was, how an anneal converged. Every
// layer of the stack (machine, noc, search, workspan, fault) accepts an
// optional *Registry and publishes into it.
//
// The registry is designed to cost nothing when absent. All methods are
// safe on a nil *Registry and return nil instruments; all instrument
// methods are safe on nil receivers and do nothing. Hot paths therefore
// resolve their instruments once at construction time and call them
// unconditionally — a nil-receiver check and return is the entire
// disabled-path overhead, and simulators that were deterministic without
// observability stay byte-for-byte deterministic with it, enabled or
// not: obs only ever *reads* the computation, never steers it.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in either direction.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// reservoirCap bounds the raw-sample reservoir each histogram keeps for
// percentile estimation. Beyond the cap, systematic thinning keeps every
// k-th observation, so long runs stay O(1) in memory while the sample
// still spans the whole run.
const reservoirCap = 1024

// Histogram is a fixed-bucket distribution metric. Bucket i counts
// observations <= bounds[i]; the last bucket is the overflow. It also
// keeps count/sum/min/max and a bounded sample reservoir from which the
// snapshot estimates percentiles (stats.Percentile).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
	sample []float64
	stride int64 // keep every stride-th observation once the reservoir is full
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts[stats.BucketIndex(h.bounds, v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.count%h.stride == 0 {
		if len(h.sample) == reservoirCap {
			// Thin systematically: keep every other retained sample and
			// double the stride, so retained samples stay evenly spaced
			// over the whole observation stream.
			keep := h.sample[:0]
			for i := 1; i < len(h.sample); i += 2 {
				keep = append(keep, h.sample[i])
			}
			h.sample = keep
			h.stride *= 2
		}
		h.sample = append(h.sample, v)
	}
	h.mu.Unlock()
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Timer records durations into a histogram in seconds.
type Timer struct {
	h *Histogram
}

// Observe records one duration. No-op on a nil receiver.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// Start returns a function that records the elapsed time when called.
// On a nil receiver it returns a no-op (never nil), so callers can
// always write `defer t.Start()()`.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Registry is a named collection of instruments. The zero value is not
// usable; call New. A nil *Registry is the disabled registry: every
// lookup returns a nil instrument and Snapshot returns an empty
// snapshot.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the counter with the given name, creating it on first
// use. Nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefaultDurationBounds are the histogram bounds (seconds) used by
// Timer: 1us to ~10s in roughly 4x steps.
var DefaultDurationBounds = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 10,
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds (strictly increasing; copied) on first
// use. A later lookup of an existing name ignores the bounds argument.
// Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
		stride: 1,
	}
}

// Timer returns the timer with the given name, creating it (with
// DefaultDurationBounds) on first use. Nil on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{h: newHistogram(DefaultDurationBounds)}
		r.timers[name] = t
	}
	return t
}

// HistogramSnapshot is the frozen state of one histogram or timer.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		P50:    stats.Percentile(h.sample, 50),
		P90:    stats.Percentile(h.sample, 90),
		P99:    stats.Percentile(h.sample, 99),
	}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	return s
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// Maps marshal with sorted keys, so the JSON form is deterministic for
// deterministic metric values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers     map[string]HistogramSnapshot `json:"timers,omitempty"`
}

// Snapshot freezes the registry. On a nil registry it returns an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, g := range gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			s.Histograms[k] = h.snapshot()
		}
	}
	if len(timers) > 0 {
		s.Timers = make(map[string]HistogramSnapshot, len(timers))
		for k, t := range timers {
			s.Timers[k] = t.h.snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Names returns the sorted names of all instruments in the snapshot,
// for deterministic iteration in tests and reports.
func (s Snapshot) Names() []string {
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	for k := range s.Histograms {
		names = append(names, k)
	}
	for k := range s.Timers {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
