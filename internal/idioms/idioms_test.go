package idioms

import (
	"math/rand"
	"testing"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/tech"
)

// sumEval interprets every multi-dep node as addition and single-dep
// nodes as identity (the copy ops idioms insert).
func sumEval(g *fm.Graph) func(fm.NodeID, []int64) int64 {
	return func(n fm.NodeID, deps []int64) int64 {
		if len(deps) == 1 {
			return deps[0]
		}
		var s int64
		for _, d := range deps {
			s += d
		}
		return s
	}
}

// run interprets a module on the given inputs and returns its output
// port's values.
func run(t *testing.T, m *fm.Module, inputs []int64) []int64 {
	t.Helper()
	vals, err := fm.Interpret(m.Graph, inputs, sumEval(m.Graph))
	if err != nil {
		t.Fatal(err)
	}
	var out []int64
	for _, p := range m.Out {
		for _, n := range p.Nodes {
			out = append(out, vals[n])
		}
	}
	return out
}

// checkLegal asserts the module's own schedule is legal on tgt.
func checkLegal(t *testing.T, m *fm.Module, tgt fm.Target) {
	t.Helper()
	if err := fm.Check(m.Graph, m.Sched, tgt); err != nil {
		t.Fatalf("%s: schedule illegal: %v", m.Name, err)
	}
}

func bigTarget(w int) fm.Target {
	tgt := fm.DefaultTarget(w, 1)
	tgt.MemWordsPerNode = 1 << 20
	return tgt
}

func seq(n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i + 1)
	}
	return xs
}

func TestMap(t *testing.T) {
	tgt := bigTarget(8)
	m := Map(tgt, 8, tech.OpAdd, 32, BlockCyclic(tgt.Grid))
	checkLegal(t, m, tgt)
	out := run(t, m, seq(8))
	for i, v := range out {
		if v != int64(i+1) {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
	// Elementwise in place: zero wire.
	c, err := fm.Evaluate(m.Graph, m.Sched, tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.WireEnergy != 0 {
		t.Errorf("map moved data: %g fJ", c.WireEnergy)
	}
}

func TestReduceValues(t *testing.T) {
	tgt := bigTarget(8)
	for _, n := range []int{1, 2, 3, 7, 8, 16} {
		m := Reduce(tgt, n, tech.OpAdd, 32, BlockCyclic(tgt.Grid))
		checkLegal(t, m, tgt)
		out := run(t, m, seq(n))
		want := int64(n * (n + 1) / 2)
		if len(out) != 1 || out[0] != want {
			t.Errorf("n=%d: reduce = %v, want %d", n, out, want)
		}
	}
}

func TestReduceDepthLogarithmic(t *testing.T) {
	tgt := bigTarget(8)
	m := Reduce(tgt, 64, tech.OpAdd, 32, BlockCyclic(tgt.Grid))
	if d := m.Graph.Depth(); d != 6 {
		t.Errorf("reduce(64) depth = %d, want 6", d)
	}
	if ops := m.Graph.CountOps(); ops != 63 {
		t.Errorf("reduce(64) ops = %d, want 63", ops)
	}
}

func TestBroadcast(t *testing.T) {
	tgt := bigTarget(8)
	for _, n := range []int{1, 2, 5, 8, 16} {
		m := Broadcast(tgt, n, 32, BlockCyclic(tgt.Grid))
		checkLegal(t, m, tgt)
		out := run(t, m, []int64{42})
		if len(out) != n {
			t.Fatalf("n=%d: %d outputs", n, len(out))
		}
		for i, v := range out {
			if v != 42 {
				t.Errorf("n=%d: out[%d] = %d", n, i, v)
			}
		}
	}
}

func TestBroadcastTreeBeatsStarOnDepth(t *testing.T) {
	// The copy tree doubles reach each level: depth O(log n) + terminal copy.
	tgt := bigTarget(8)
	m := Broadcast(tgt, 64, 32, BlockCyclic(tgt.Grid))
	if d := m.Graph.Depth(); d > 8 { // log2(64)=6 levels + terminal copies
		t.Errorf("broadcast(64) depth = %d", d)
	}
}

func TestGather(t *testing.T) {
	tgt := bigTarget(4)
	idx := []int{3, 3, 0, 1}
	m := Gather(tgt, 32, 4, idx, BlockCyclic(tgt.Grid))
	checkLegal(t, m, tgt)
	out := run(t, m, []int64{10, 20, 30, 40})
	want := []int64{40, 40, 10, 20}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out = %v, want %v", out, want)
			break
		}
	}
	assertPanics(t, "bad index", func() { Gather(tgt, 32, 4, []int{4}, BlockCyclic(tgt.Grid)) })
}

func TestShuffle(t *testing.T) {
	tgt := bigTarget(4)
	perm := []int{2, 0, 3, 1} // out[perm[i]] = in[i]
	m := Shuffle(tgt, 32, perm, BlockCyclic(tgt.Grid))
	checkLegal(t, m, tgt)
	out := run(t, m, []int64{10, 20, 30, 40})
	want := []int64{20, 40, 10, 30}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out = %v, want %v", out, want)
			break
		}
	}
	assertPanics(t, "not a permutation", func() { Shuffle(tgt, 32, []int{0, 0}, BlockCyclic(tgt.Grid)) })
}

func TestShuffleRandomPermutations(t *testing.T) {
	tgt := bigTarget(8)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(14)
		perm := rng.Perm(n)
		m := Shuffle(tgt, 32, perm, BlockCyclic(tgt.Grid))
		checkLegal(t, m, tgt)
		in := make([]int64, n)
		for i := range in {
			in[i] = rng.Int63n(1000)
		}
		out := run(t, m, in)
		for i := range in {
			if out[perm[i]] != in[i] {
				t.Fatalf("trial %d: out[perm[%d]] = %d, want %d", trial, i, out[perm[i]], in[i])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	tgt := bigTarget(8)
	// 2x3 input [[1,2,3],[4,5,6]] -> 3x2 output [[1,4],[2,5],[3,6]].
	m := Transpose(tgt, 2, 3, 32, BlockCyclic(tgt.Grid))
	checkLegal(t, m, tgt)
	out := run(t, m, []int64{1, 2, 3, 4, 5, 6})
	want := []int64{1, 4, 2, 5, 3, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	// Transposing twice is the identity.
	back := Transpose(tgt, 3, 2, 32, BlockCyclic(tgt.Grid))
	comp, err := fm.ComposeAligned("t;t", m, back, tgt)
	if err != nil {
		t.Fatal(err)
	}
	out2 := run(t, comp, []int64{1, 2, 3, 4, 5, 6})
	for i, v := range []int64{1, 2, 3, 4, 5, 6} {
		if out2[i] != v {
			t.Fatalf("double transpose = %v", out2)
		}
	}
	assertPanics(t, "bad dims", func() { Transpose(tgt, 0, 3, 32, BlockCyclic(tgt.Grid)) })
}

func TestScansComputePrefixSums(t *testing.T) {
	tgt := bigTarget(8)
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		for name, m := range map[string]*fm.Module{
			"kogge-stone": ScanKoggeStone(tgt, n, tech.OpAdd, 32, BlockCyclic(tgt.Grid)),
			"blelloch":    ScanBlelloch(tgt, n, tech.OpAdd, 32, BlockCyclic(tgt.Grid)),
		} {
			checkLegal(t, m, tgt)
			out := run(t, m, seq(n))
			for i := 0; i < n; i++ {
				want := int64((i + 1) * (i + 2) / 2)
				if out[i] != want {
					t.Errorf("%s n=%d: out[%d] = %d, want %d", name, n, i, out[i], want)
				}
			}
		}
	}
}

func TestScanKoggeStoneHandlesNonPowerOfTwo(t *testing.T) {
	tgt := bigTarget(8)
	m := ScanKoggeStone(tgt, 5, tech.OpAdd, 32, BlockCyclic(tgt.Grid))
	out := run(t, m, seq(5))
	want := []int64{1, 3, 6, 10, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out = %v, want %v", out, want)
			break
		}
	}
}

func TestBlellochScanIsWorkEfficient(t *testing.T) {
	// The two functions solve the same problem; Blelloch does O(n) adds,
	// Kogge-Stone O(n log n). The model exposes this as compute energy.
	tgt := bigTarget(8)
	const n = 64
	ks := ScanKoggeStone(tgt, n, tech.OpAdd, 32, BlockCyclic(tgt.Grid))
	bl := ScanBlelloch(tgt, n, tech.OpAdd, 32, BlockCyclic(tgt.Grid))
	cks, err := fm.Evaluate(ks.Graph, ks.Sched, tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cbl, err := fm.Evaluate(bl.Graph, bl.Sched, tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cbl.Ops >= cks.Ops {
		t.Errorf("Blelloch ops (%d) should be below Kogge-Stone (%d)", cbl.Ops, cks.Ops)
	}
	if cbl.EnergyFJ >= cks.EnergyFJ {
		t.Errorf("Blelloch energy (%g) should be below Kogge-Stone (%g)", cbl.EnergyFJ, cks.EnergyFJ)
	}
	assertPanics(t, "non power of two", func() {
		ScanBlelloch(tgt, 6, tech.OpAdd, 32, BlockCyclic(tgt.Grid))
	})
}

func TestIdiomsCompose(t *testing.T) {
	// map -> scan -> reduce, all on the same layout: aligned composition.
	tgt := bigTarget(8)
	lay := BlockCyclic(tgt.Grid)
	const n = 8
	mp := Map(tgt, n, tech.OpAdd, 32, lay)
	sc := ScanKoggeStone(tgt, n, tech.OpAdd, 32, lay)
	comp, err := fm.ComposeAligned("map;scan", mp, sc, tgt)
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, comp, tgt)
	out := run(t, comp, seq(n))
	for i := 0; i < n; i++ {
		want := int64((i + 1) * (i + 2) / 2)
		if out[i] != want {
			t.Errorf("composed out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestIdiomsComposeMisalignedNeedsRemap(t *testing.T) {
	tgt := bigTarget(8)
	const n = 8
	a := Map(tgt, n, tech.OpAdd, 32, BlockCyclic(tgt.Grid))
	rev := func(i int) geom.Point { return tgt.Grid.At(n - 1 - i) }
	b := Map(tgt, n, tech.OpAdd, 32, rev)
	if err := fm.CheckAligned(a, b); err == nil {
		t.Fatal("reversed layouts should misalign")
	}
	comp, st, err := fm.ComposeWithRemap("map>rev", a, b, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves != n {
		t.Errorf("moves = %d, want %d", st.Moves, n)
	}
	checkLegal(t, comp, tgt)
}

func TestAllAtLayoutSerializes(t *testing.T) {
	tgt := bigTarget(4)
	m := Reduce(tgt, 8, tech.OpAdd, 32, AllAt(geom.Pt(0, 0)))
	checkLegal(t, m, tgt)
	c, err := fm.Evaluate(m.Graph, m.Sched, tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.WireEnergy != 0 || c.PlacesUsed != 1 {
		t.Errorf("AllAt should be local: %v", c)
	}
}

func TestCheckNPanics(t *testing.T) {
	tgt := bigTarget(2)
	assertPanics(t, "zero map", func() { Map(tgt, 0, tech.OpAdd, 32, BlockCyclic(tgt.Grid)) })
	assertPanics(t, "zero reduce", func() { Reduce(tgt, 0, tech.OpAdd, 32, BlockCyclic(tgt.Grid)) })
	assertPanics(t, "zero bcast", func() { Broadcast(tgt, 0, 32, BlockCyclic(tgt.Grid)) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
