// The paper's worked example, end to end: the edit-distance recurrence
//
//	H(i,j) = min(H(i-1,j-1)+f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0)
//	Map H(i,j) at i % P  time floor(i/P)*N + j
//
// computed four ways — serial loop nest, work-span wavefront on real
// goroutines, the F&M dataflow graph interpreted semantically, and the
// F&M anti-diagonal mapping priced on the 5nm grid — all agreeing on the
// answer while the cost model separates their prices.
//
//	go run ./examples/editdistance
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/algorithms/editdist"
	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/trace"
	"repro/internal/workspan"
)

func main() {
	r := []byte("accommodate")
	q := []byte("acomodate")
	costs := editdist.Levenshtein()

	// 1. Serial RAM loop nest.
	serialDist := editdist.Distance(r, q, costs)
	fmt.Printf("serial DP:            distance(%q, %q) = %d\n", r, q, serialDist)

	// 2. Work-span wavefront on real goroutines.
	pool := workspan.NewPool(runtime.NumCPU(), workspan.WorkStealing)
	defer pool.Close()
	var wf [][]int32
	pool.Run(func(c *workspan.Ctx) {
		wf = editdist.Wavefront(c, r, q, costs, 4)
	})
	fmt.Printf("work-span wavefront:  distance = %d\n", wf[len(r)-1][len(q)-1])

	// 3. The F&M function, interpreted (mapping-independent semantics).
	g, dom, err := editdist.Recurrence(r, q).Materialize()
	if err != nil {
		log.Fatal(err)
	}
	vals, err := fm.Interpret(g, nil, editdist.Evaluator(dom, r, q, costs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F&M dataflow graph:   distance = %d (%d cells, depth %d)\n",
		vals[dom.Node(len(r)-1, len(q)-1)], g.CountOps(), g.Depth())

	// 4. The paper's mapping, priced. Bigger square inputs show the trend.
	n := 48
	rr := make([]byte, n)
	qq := make([]byte, n)
	tgt := fm.DefaultTarget(8, 1)
	tgt.Grid.PitchMM = 0.1
	tgt.MemWordsPerNode = 1 << 22
	serialCost, err := editdist.SerialMapping(rr, qq, tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmapping the %dx%d recurrence on the 5nm grid (0.1mm pitch):\n", n, n)
	fmt.Printf("  %-22s %v\n", "serial projection:", serialCost)
	for _, p := range []int{2, 4, 8} {
		c, err := editdist.PaperMapping(rr, qq, p, tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %v  (speedup %.2fx)\n",
			fmt.Sprintf("anti-diagonal P=%d:", p), c,
			float64(serialCost.Cycles)/float64(c.Cycles))
	}

	// Space-time diagram of the marching anti-diagonals (small instance).
	small := 12
	sg, sdom, err := editdist.Recurrence(make([]byte, small), make([]byte, small)).Materialize()
	if err != nil {
		log.Fatal(err)
	}
	stgt := fm.DefaultTarget(4, 1)
	stgt.Grid.PitchMM = 0.1
	stgt.MemWordsPerNode = 1 << 20
	stride := fm.MinAntiDiagonalStride(stgt, 0, 32, small, 4)
	sched := fm.AntiDiagonalSchedule(sdom, 4, stride, geom.Pt(0, 0))
	tr := trace.New()
	if _, err := fm.Evaluate(sg, sched, stgt, fm.EvalOptions{Trace: tr}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmarching anti-diagonals, %dx%d on 4 processors:\n%s",
		small, small, trace.Render(tr, trace.RenderOptions{Grid: stgt.Grid, Columns: 72}))
}
