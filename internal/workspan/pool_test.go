package workspan

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func withPool(t *testing.T, p int, mode Mode, f func(*Pool)) {
	t.Helper()
	pool := NewPool(p, mode)
	defer pool.Close()
	f(pool)
}

func TestRunExecutes(t *testing.T) {
	for _, mode := range []Mode{WorkStealing, CentralQueue} {
		withPool(t, 4, mode, func(p *Pool) {
			var ran atomic.Bool
			p.Run(func(c *Ctx) { ran.Store(true) })
			if !ran.Load() {
				t.Errorf("%v: Run did not execute", mode)
			}
		})
	}
}

func TestDoRunsBoth(t *testing.T) {
	for _, mode := range []Mode{WorkStealing, CentralQueue} {
		withPool(t, 4, mode, func(p *Pool) {
			var a, b atomic.Int64
			p.Run(func(c *Ctx) {
				c.Do(
					func(c *Ctx) { a.Add(1) },
					func(c *Ctx) { b.Add(1) },
				)
			})
			if a.Load() != 1 || b.Load() != 1 {
				t.Errorf("%v: a=%d b=%d", mode, a.Load(), b.Load())
			}
		})
	}
}

func TestDoNested(t *testing.T) {
	// A full binary fork tree of depth 12: 4096 leaves, all must run.
	for _, mode := range []Mode{WorkStealing, CentralQueue} {
		withPool(t, 4, mode, func(p *Pool) {
			var leaves atomic.Int64
			var tree func(c *Ctx, depth int)
			tree = func(c *Ctx, depth int) {
				if depth == 0 {
					leaves.Add(1)
					return
				}
				c.Do(
					func(c *Ctx) { tree(c, depth-1) },
					func(c *Ctx) { tree(c, depth-1) },
				)
			}
			p.Run(func(c *Ctx) { tree(c, 12) })
			if leaves.Load() != 4096 {
				t.Errorf("%v: %d leaves, want 4096", mode, leaves.Load())
			}
		})
	}
}

func TestRunSequentialPool(t *testing.T) {
	// P=1 must still complete arbitrary fork trees (inline execution).
	withPool(t, 1, WorkStealing, func(p *Pool) {
		sum := 0
		p.Run(func(c *Ctx) {
			c.Do(
				func(c *Ctx) { sum += 1 },
				func(c *Ctx) { sum += 2 },
			)
		})
		if sum != 3 {
			t.Errorf("sum = %d", sum)
		}
	})
}

func TestWorkerIndexInRange(t *testing.T) {
	withPool(t, 3, WorkStealing, func(p *Pool) {
		p.Run(func(c *Ctx) {
			if c.Worker() < 0 || c.Worker() >= 3 {
				t.Errorf("worker index %d", c.Worker())
			}
			if c.Pool() != p {
				t.Error("Pool() mismatch")
			}
		})
	})
	if (&Pool{}).Workers() != 0 {
		t.Error("Workers on empty pool")
	}
}

func TestActualParallelism(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU machine")
	}
	// Two tasks that each wait for the other to start can only finish if
	// they truly run concurrently.
	withPool(t, 2, WorkStealing, func(p *Pool) {
		var aStarted, bStarted atomic.Bool
		p.Run(func(c *Ctx) {
			c.Do(
				func(c *Ctx) {
					aStarted.Store(true)
					for !bStarted.Load() {
						runtime.Gosched()
					}
				},
				func(c *Ctx) {
					bStarted.Store(true)
					for !aStarted.Load() {
						runtime.Gosched()
					}
				},
			)
		})
	})
}

func TestStatsCount(t *testing.T) {
	withPool(t, 2, WorkStealing, func(p *Pool) {
		p.Run(func(c *Ctx) {
			For(c, 0, 1000, 10, func(lo, hi int) {})
		})
		s := p.Stats()
		if s.Spawns == 0 {
			t.Error("no spawns recorded")
		}
		if s.Inline+s.Steals == 0 {
			t.Error("no task executions recorded")
		}
	})
}

func TestSpawnCountMatchesForkTree(t *testing.T) {
	withPool(t, 2, WorkStealing, func(p *Pool) {
		before := p.Stats().Spawns
		p.Run(func(c *Ctx) {
			var tree func(c *Ctx, d int)
			tree = func(c *Ctx, d int) {
				if d == 0 {
					return
				}
				c.Do(func(c *Ctx) { tree(c, d-1) }, func(c *Ctx) { tree(c, d-1) })
			}
			tree(c, 5)
		})
		// A depth-5 binary tree has 2^5-1 internal Do calls.
		if got := p.Stats().Spawns - before; got != 31 {
			t.Errorf("spawns = %d, want 31", got)
		}
	})
}

func TestCentralQueueRecordsNoSteals(t *testing.T) {
	withPool(t, 4, CentralQueue, func(p *Pool) {
		p.Run(func(c *Ctx) {
			For(c, 0, 200, 1, func(lo, hi int) {})
		})
		if s := p.Stats(); s.Steals != 0 {
			t.Errorf("central queue counted %d steals", s.Steals)
		}
	})
}

func TestClosedPoolErrors(t *testing.T) {
	p := NewPool(1, WorkStealing)
	p.Close()
	if err := p.Run(func(c *Ctx) {}); err == nil {
		t.Error("Run on closed pool returned nil error")
	}
}

func TestNewPoolPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPool(0, WorkStealing)
}

func TestModeString(t *testing.T) {
	if WorkStealing.String() != "work-stealing" || CentralQueue.String() != "central-queue" {
		t.Error("mode strings wrong")
	}
	if Mode(7).String() != "Mode(7)" {
		t.Error("unknown mode string")
	}
}

func TestPoolForCoversRangeExactlyOnce(t *testing.T) {
	for _, mode := range []Mode{WorkStealing, CentralQueue} {
		for _, workers := range []int{1, 3, 8} {
			withPool(t, workers, mode, func(p *Pool) {
				const n = 1000
				hits := make([]int32, n)
				p.For(0, n, 7, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("%v/%d workers: index %d visited %d times", mode, workers, i, h)
					}
				}
			})
		}
	}
}

func TestPoolForEmptyRange(t *testing.T) {
	withPool(t, 2, WorkStealing, func(p *Pool) {
		ran := false
		p.For(5, 5, 1, func(lo, hi int) { ran = true })
		if ran {
			t.Error("body ran on an empty range")
		}
	})
}

func TestDequeOrder(t *testing.T) {
	var d deque
	t1, t2, t3 := &task{}, &task{}, &task{}
	d.pushBottom(t1)
	d.pushBottom(t2)
	d.pushBottom(t3)
	if d.stealTop() != t1 {
		t.Error("steal should take oldest")
	}
	if d.popBottom() != t3 {
		t.Error("pop should take newest")
	}
	if !d.remove(t2) {
		t.Error("remove should find t2")
	}
	if d.remove(t2) {
		t.Error("remove should fail on absent task")
	}
	if d.popBottom() != nil || d.stealTop() != nil {
		t.Error("deque should be empty")
	}
}
