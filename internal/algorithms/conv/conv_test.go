package conv

import (
	"math/rand"
	"testing"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/verify"
)

func TestReferenceKnown(t *testing.T) {
	y := Reference([]int64{1, 2, 3, 4}, []int64{1, 1})
	want := []int64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestBuildShape(t *testing.T) {
	c := Build(8, 3)
	if c.Outs() != 6 {
		t.Errorf("Outs = %d", c.Outs())
	}
	if got := c.Graph.CountOps(); got != 6*3 {
		t.Errorf("ops = %d, want 18", got)
	}
	if got := len(c.Graph.Inputs()); got != 8+3 {
		t.Errorf("inputs = %d", got)
	}
	if got := len(c.Graph.Outputs()); got != 6 {
		t.Errorf("outputs = %d", got)
	}
	assertPanics(t, "bad sizes", func() { Build(2, 3) })
	assertPanics(t, "zero taps", func() { Build(4, 0) })
}

func TestInterpretMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(12)
		k := 1 + rng.Intn(n)
		c := Build(n, k)
		x := make([]int64, n)
		w := make([]int64, k)
		for i := range x {
			x[i] = rng.Int63n(20) - 10
		}
		for i := range w {
			w[i] = rng.Int63n(20) - 10
		}
		got := c.Interpret(x, w)
		want := Reference(x, w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: y[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestEquivExhaustive(t *testing.T) {
	// Bounded-exhaustive equivalence of the tiny conv over {-1,0,2}.
	c := Build(3, 2)
	res, err := verify.Equiv(c.Graph, []int64{-1, 0, 2}, 0,
		func(n fm.NodeID, deps []int64) int64 {
			acc := deps[0] * deps[1]
			if len(deps) == 3 {
				acc += deps[2]
			}
			return acc
		},
		func(in []int64) []int64 {
			// Inputs arrive x..., w... in build order.
			return Reference(in[:3], in[3:])
		})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("conv graph not equivalent: %v", res)
	}
	if res.Checked != 3*3*3*3*3 {
		t.Errorf("Checked = %d, want 243", res.Checked)
	}
}

func dataflowTarget(w int) fm.Target {
	tgt := fm.DefaultTarget(w, 1)
	tgt.Grid.PitchMM = 0.2
	tgt.MemWordsPerNode = 1 << 20
	return tgt
}

func TestDataflowsLegal(t *testing.T) {
	c := Build(20, 5)
	tgt := dataflowTarget(16)
	for name, sched := range map[string]fm.Schedule{
		"weight-stationary": c.WeightStationary(tgt),
		"output-stationary": c.OutputStationary(tgt),
	} {
		if err := fm.Check(c.Graph, sched, tgt); err != nil {
			t.Errorf("%s illegal: %v", name, err)
		}
		// Cross-verify with the operational replay.
		if res := verify.Refine(c.Graph, sched, tgt); !res.OK() {
			t.Errorf("%s failed refinement: %d violations", name, len(res.Violations))
		}
	}
}

func TestDataflowTrafficAttribution(t *testing.T) {
	c := Build(20, 5)
	tgt := dataflowTarget(16)

	ws := c.AttributeTraffic(c.WeightStationary(tgt))
	if ws.Weights != 0 {
		t.Errorf("weight-stationary moves weights: %d bit-hops", ws.Weights)
	}
	if ws.Partials == 0 || ws.Signal == 0 {
		t.Errorf("weight-stationary should move signal and partials: %+v", ws)
	}

	os := c.AttributeTraffic(c.OutputStationary(tgt))
	if os.Partials != 0 {
		t.Errorf("output-stationary moves partial sums: %d bit-hops", os.Partials)
	}
	if os.Weights == 0 || os.Signal == 0 {
		t.Errorf("output-stationary should move weights and signal: %+v", os)
	}
}

func TestDataflowCostsDiffer(t *testing.T) {
	// Same function, same total work, different wire bills.
	c := Build(20, 5)
	tgt := dataflowTarget(16)
	cws, err := fm.Evaluate(c.Graph, c.WeightStationary(tgt), tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cos, err := fm.Evaluate(c.Graph, c.OutputStationary(tgt), tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cws.ComputeEnergy != cos.ComputeEnergy {
		t.Errorf("compute energy must be mapping-invariant: %g vs %g", cws.ComputeEnergy, cos.ComputeEnergy)
	}
	if cws.WireEnergy == cos.WireEnergy {
		t.Error("the two dataflows should have different wire bills")
	}
	serial, err := fm.Evaluate(c.Graph, fm.SerialSchedule(c.Graph, tgt, geom.Pt(0, 0)), tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cws.Cycles >= serial.Cycles || cos.Cycles >= serial.Cycles {
		t.Errorf("dataflows should beat serial: ws=%d os=%d serial=%d",
			cws.Cycles, cos.Cycles, serial.Cycles)
	}
}

func TestStationaryChoiceFollowsReuse(t *testing.T) {
	// Few taps, many outputs: output-stationary ships the small weight
	// vector around; weight-stationary ships every partial sum. The
	// per-tensor attribution makes the trade quantitative.
	tgt := dataflowTarget(32)
	small := Build(32, 3)
	ws := small.AttributeTraffic(small.WeightStationary(tgt))
	os := small.AttributeTraffic(small.OutputStationary(tgt))
	if ws.Weights+os.Partials != 0 {
		t.Fatal("stationarity violated")
	}
	wsTotal := ws.Weights + ws.Signal + ws.Partials
	osTotal := os.Weights + os.Signal + os.Partials
	if wsTotal == osTotal {
		t.Error("expected distinct totals for the two dataflows")
	}
}

func TestDataflowPanics(t *testing.T) {
	c := Build(20, 5)
	narrow := dataflowTarget(2)
	assertPanics(t, "ws too narrow", func() { c.WeightStationary(narrow) })
	assertPanics(t, "os too narrow", func() { c.OutputStationary(narrow) })
	assertPanics(t, "interpret arity", func() { c.Interpret(make([]int64, 3), make([]int64, 5)) })
	assertPanics(t, "reference sizes", func() { Reference([]int64{1}, []int64{1, 2}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
