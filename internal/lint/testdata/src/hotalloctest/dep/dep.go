// Package dep is reached from the hotalloctest roots across the
// package boundary; the want comment here proves interprocedural
// reporting and cross-file want matching.
package dep

func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	if t < 0 {
		t = pad(t)
	}
	return t
}

func pad(v int) int {
	buf := make([]int, 8) // want "hotpath hot: make allocates"
	return v + len(buf)
}
