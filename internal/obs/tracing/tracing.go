// Package tracing is the serving layer's flight recorder: per-request
// span trees with deterministic identity and exact attribution. Where
// internal/trace answers "where did the machine's cycles go" (critical
// path attribution summing exactly to makespan), this package answers
// the same question one level up — where did a request's latency go:
// admission, queue wait, batch coalescing, evaluation, store traffic —
// under the same two contracts:
//
//   - Determinism. Trace and span IDs derive from a per-server seed and
//     an admission sequence number, never from the wall clock or global
//     rand; timestamps are read only through the Clock seam. Two
//     same-seed drills against a frozen clock export byte-identical
//     traces, so a trace diff is a regression test, not a screenshot.
//   - Exact sums. A request trace is a partition of its lifetime into
//     contiguous stages: each Stage call closes the current stage and
//     opens the next at the same clock reading, and Finish closes the
//     last. Stage durations therefore telescope — they sum to the
//     request span exactly, in integer nanoseconds, never
//     "approximately".
//
// Like internal/obs, the API is nil-safe and free when absent: every
// method no-ops on a nil *Tracer or nil *Request, the disabled path
// allocates nothing (gated by an AllocsPerRun test), and tracing only
// ever observes the computation, never steers it.
package tracing

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies timestamps. serve.Clock satisfies it structurally, so
// the server's one wall-clock seam (or its FakeClock) feeds the tracer
// too — no second source of time exists.
type Clock interface {
	Now() time.Time
}

// Options configures a Tracer. The zero value of every field except
// Clock selects a sensible default.
type Options struct {
	// Seed is the per-server identity seed trace IDs derive from.
	Seed uint64
	// Capacity bounds the completed-trace ring buffer. Default 256.
	Capacity int
	// ExemplarK pins the K slowest traces per route against eviction.
	// Default 4; 0 disables exemplar retention.
	ExemplarK int
	// Clock supplies timestamps; required.
	Clock Clock
	// OnExemplar, when non-nil, is called (synchronously, on the
	// finishing goroutine) each time a completed trace first becomes a
	// slow-request exemplar — the hook mapd uses to emit a log line
	// carrying the trace ID, joining logs to traces.
	OnExemplar func(Record)
}

// Tracer mints request traces and retains the completed ones. A nil
// *Tracer is the disabled tracer: StartRequest returns the context
// unchanged and a nil *Request, and every downstream call is a free
// no-op.
type Tracer struct {
	seed       uint64
	clock      Clock
	buf        *buffer
	onExemplar func(Record)
	seq        atomic.Uint64
}

// New builds a Tracer. Options.Clock must be non-nil — the tracer has
// no fallback time source by design (a hidden time.Now would break the
// determinism contract).
func New(opts Options) *Tracer {
	if opts.Clock == nil {
		//lint:allow panic(constructor argument contract: a tracer without a clock seam cannot honor determinism; callers pass the serve Clock)
		panic("tracing: Options.Clock is required")
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.ExemplarK < 0 {
		opts.ExemplarK = 0
	}
	return &Tracer{
		seed:       opts.Seed,
		clock:      opts.Clock,
		buf:        newBuffer(opts.Capacity, opts.ExemplarK),
		onExemplar: opts.OnExemplar,
	}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// requestKey binds a *Request into a context.Context.
type requestKey struct{}

// StartRequest begins a request trace on route, opening its first stage
// (named first) at the current clock reading, and binds the trace into
// the returned context so deeper layers recover it with FromContext. On
// a nil tracer it returns ctx unchanged and a nil *Request — zero
// allocations, zero overhead.
func (t *Tracer) StartRequest(ctx context.Context, route, first string) (context.Context, *Request) {
	if t == nil {
		return ctx, nil
	}
	r := t.start(route, first)
	return context.WithValue(ctx, requestKey{}, r), r
}

// StartDetached begins a trace not bound to any context — the batch
// trace: a server-owned span whose lifetime belongs to the drain
// worker, not to any one member request. Nil tracer returns nil.
func (t *Tracer) StartDetached(route, first string) *Request {
	if t == nil {
		return nil
	}
	return t.start(route, first)
}

func (t *Tracer) start(route, first string) *Request {
	seq := t.seq.Add(1)
	now := t.clock.Now()
	r := &Request{
		t:       t,
		seq:     seq,
		traceID: mix(t.seed ^ mix(seq)),
		route:   route,
		start:   now,
	}
	r.stages = append(r.stages, stageMark{name: first, start: now})
	return r
}

// FromContext returns the request trace bound by StartRequest, or nil —
// which every Request method accepts.
func FromContext(ctx context.Context) *Request {
	r, _ := ctx.Value(requestKey{}).(*Request)
	return r
}

// maxStages and maxMarks bound what one trace can accumulate, so a
// pathological caller cannot turn the flight recorder into a leak.
const (
	maxStages = 64
	maxMarks  = 256
)

// stageMark is an open stage boundary: the closing instant is the next
// stage's opening one (or the trace end), which is what makes stage
// durations telescope to the request span exactly.
type stageMark struct {
	name  string
	start time.Time
}

// Request is one in-flight trace. All methods are safe on a nil
// receiver and safe to call concurrently (the handler and a drain
// worker can legitimately race on a job that expired while queued);
// calls after Finish are no-ops.
type Request struct {
	t *Tracer

	mu      sync.Mutex
	seq     uint64
	traceID uint64
	route   string
	start   time.Time
	stages  []stageMark
	marks   []MarkRecord
	annos   map[string]string
	outcome string
	done    bool
}

// Stage closes the current stage and opens name at the same clock
// reading. The boundaries partition the request span: no gaps, no
// overlap, exact sums.
//
// Stage sits on the serving hot path and is called with a nil receiver
// whenever tracing is disabled, so the nil fast path must stay
// allocation-free; hotalloc checks that statically.
//
//lint:hotpath
func (r *Request) Stage(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.done && len(r.stages) < maxStages {
		//lint:allow alloc(enabled-tracing slow path: the append is bounded by maxStages and the clock is an injected interface; the nil fast path above allocates nothing)
		r.stages = append(r.stages, stageMark{name: name, start: r.t.clock.Now()})
	}
	r.mu.Unlock()
}

// Annotate attaches a key/value pair to the trace (refusal reasons,
// batch links, resume provenance). Later writes to the same key win.
func (r *Request) Annotate(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.done {
		if r.annos == nil {
			r.annos = make(map[string]string, 4)
		}
		r.annos[key] = value
	}
	r.mu.Unlock()
}

// Mark records an instantaneous event (an anneal exchange barrier, say)
// at the current clock reading, without opening a stage. Like Stage it
// is hot-path: the nil fast path must stay allocation-free.
//
//lint:hotpath
func (r *Request) Mark(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.done && len(r.marks) < maxMarks {
		//lint:allow alloc(enabled-tracing slow path: the append is bounded by maxMarks and the clock is an injected interface; the nil fast path above allocates nothing)
		r.marks = append(r.marks, MarkRecord{
			Name: name,
			//lint:allow alloc(the clock is an injected interface; both implementations read time without allocating)
			OffsetNS: r.t.clock.Now().Sub(r.start).Nanoseconds(),
		})
	}
	r.mu.Unlock()
}

// SetOutcome labels how the request ended: ok, degraded, rejected,
// deadline, canceled, error. Unset means "ok".
func (r *Request) SetOutcome(outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.done {
		r.outcome = outcome
	}
	r.mu.Unlock()
}

// TraceID returns the trace's deterministic identity as 16 hex digits;
// "" on a nil receiver.
func (r *Request) TraceID() string {
	if r == nil {
		return ""
	}
	return formatID(r.traceID)
}

// Finish closes the last stage at the current clock reading and commits
// the completed record to the tracer's ring buffer. Idempotent: handlers
// defer it as a backstop and also call it explicitly before writing the
// response, so a sequential client observes completed traces in request
// order.
func (r *Request) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	end := r.t.clock.Now()
	rec := r.buildRecordLocked(end)
	t := r.t
	r.mu.Unlock()

	if becameExemplar := t.buf.add(rec); becameExemplar && t.onExemplar != nil {
		t.onExemplar(*rec)
	}
}

// buildRecordLocked freezes the trace into its wire form. Stage i spans
// [stages[i].start, stages[i+1].start) — the last spans to end — so the
// durations telescope to end-start exactly.
func (r *Request) buildRecordLocked(end time.Time) *Record {
	rec := &Record{
		TraceID:     formatID(r.traceID),
		Seq:         r.seq,
		Route:       r.route,
		StartUnixNS: r.start.UnixNano(),
		DurationNS:  end.Sub(r.start).Nanoseconds(),
		Outcome:     r.outcome,
		Annotations: r.annos,
		Marks:       r.marks,
	}
	if rec.Outcome == "" {
		rec.Outcome = "ok"
	}
	rec.Stages = make([]StageRecord, len(r.stages))
	for i, st := range r.stages {
		stop := end
		if i+1 < len(r.stages) {
			stop = r.stages[i+1].start
		}
		rec.Stages[i] = StageRecord{
			SpanID:     formatID(mix(r.traceID ^ uint64(i+1))),
			Name:       st.name,
			OffsetNS:   st.start.Sub(r.start).Nanoseconds(),
			DurationNS: stop.Sub(st.start).Nanoseconds(),
		}
	}
	return rec
}

// mix is the splitmix64 finalizer: a cheap, well-distributed hash from
// (seed, sequence number) to trace identity. Purely arithmetic — no
// clock, no rand — so same seed + same admission order means same IDs.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func formatID(id uint64) string {
	return fmt.Sprintf("%016x", id)
}
