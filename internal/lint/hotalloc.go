package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// The hot-path annotation. A function whose doc comment contains
//
//	//lint:hotpath
//
// becomes a hotalloc root: every allocation statically reachable from
// it is a finding. The analyzer is the compile-time twin of the
// TestAnnealMoveZeroAlloc runtime gate — the benchmark proves one
// particular run allocated nothing, the analyzer proves no call site
// anywhere in the reachable graph can have introduced an allocation
// without an audit-trail annotation.
var hotpathRE = regexp.MustCompile(`^//lint:hotpath(\s.*)?$`)

// hotCleanPkgs are stdlib packages whose functions and methods are
// known allocation-free: pure arithmetic and lock-word manipulation.
var hotCleanPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// hotCleanRecvPkgs are stdlib packages whose *methods* are known
// allocation-free (drawing from a seeded *rand.Rand, comparing times,
// locking a mutex) even though their constructors and top-level
// functions generally are not.
var hotCleanRecvPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"time":         true,
	"sync":         true,
}

// Hotalloc walks the static call graph from every //lint:hotpath
// function and reports anything that can allocate on the way: make/new,
// append growth, closure captures, interface boxing, string
// concatenation and conversions, fmt calls, go statements, and — because
// a static analyzer must be honest about its blind spots — dynamic
// calls and calls into packages whose source it cannot see, which need
// an //lint:allow alloc(reason) stating why they are safe. Calls into
// other module packages are followed interprocedurally through the
// driver's Dep hook; an allow on a call site vouches for the whole
// callee and stops the walk there. panic calls are skipped: a panic is
// terminal, not part of any steady state the gate protects.
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //lint:hotpath must not reach allocations: make/new/append, " +
		"closure capture, interface boxing, string building, fmt, or unanalyzable calls " +
		"(escape hatch: //lint:allow alloc(reason))",
	Run: runHotalloc,
}

func runHotalloc(pass *analysis.Pass) (interface{}, error) {
	rootView := &pkgView{
		path:  pass.Pkg.Path(),
		files: pass.Files,
		pkg:   pass.Pkg,
		info:  pass.TypesInfo,
	}
	w := &hotWalker{
		pass:     pass,
		views:    map[string]*pkgView{rootView.path: rootView},
		reported: make(map[hotFinding]bool),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			w.root = funcDisplayName(fn)
			w.visited = make(map[*types.Func]bool)
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				w.visited[obj] = true
			}
			w.walkBody(rootView, fn)
		}
	}
	return nil, nil
}

// isHotpath reports whether fn's doc comment carries the annotation.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if hotpathRE.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// funcDisplayName renders fn for diagnostics: "Name" or "(*Recv).Name".
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	name := receiverTypeName(recv)
	if _, ok := recv.(*ast.StarExpr); ok {
		name = "*" + name
	}
	return "(" + name + ")." + fn.Name.Name
}

// pkgView is the uniform syntax+types view hotalloc walks: the pass's
// own package or a dependency obtained through Pass.Dep.
type pkgView struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl // lazily built
}

// declOf finds the FuncDecl defining obj within the view.
func (v *pkgView) declOf(obj *types.Func) *ast.FuncDecl {
	if v.decls == nil {
		v.decls = make(map[*types.Func]*ast.FuncDecl)
		for _, f := range v.files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok {
					if def, ok := v.info.Defs[fn.Name].(*types.Func); ok {
						v.decls[def] = fn
					}
				}
			}
		}
	}
	return v.decls[obj]
}

// hotFinding dedups diagnostics per (root, position, message): a
// function reachable from two roots is reported once per root, a site
// reached twice from one root once.
type hotFinding struct {
	root string
	pos  token.Pos
	msg  string
}

type hotWalker struct {
	pass     *analysis.Pass
	views    map[string]*pkgView
	root     string
	visited  map[*types.Func]bool
	reported map[hotFinding]bool
}

// view resolves a package path to its syntax view, consulting the
// driver's Dep hook for anything but the pass's own package. nil means
// the package's source is not available (stdlib, unanalyzed).
func (w *hotWalker) view(path string) *pkgView {
	if v, ok := w.views[path]; ok {
		return v
	}
	var v *pkgView
	if w.pass.Dep != nil {
		if d := w.pass.Dep(path); d != nil && len(d.Files) > 0 {
			v = &pkgView{path: d.PkgPath, files: d.Files, pkg: d.Pkg, info: d.TypesInfo}
		}
	}
	w.views[path] = v // cache negative results too
	return v
}

func (w *hotWalker) report(v *pkgView, pos token.Pos, format string, args ...interface{}) {
	if f := fileFor(v.files, pos); f != nil && allowed(w.pass.Fset, f, pos, "alloc") {
		return
	}
	msg := "hotpath " + w.root + ": " + fmt.Sprintf(format, args...)
	key := hotFinding{root: w.root, pos: pos, msg: msg}
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}

// walkBody scans one function body for allocation sites and follows
// static calls.
func (w *hotWalker) walkBody(v *pkgView, fn *ast.FuncDecl) {
	w.walkNode(v, fn.Body, fn.Pos(), fn.End())
}

// walkNode scans node (a function or literal body) in view v.
// enclStart/enclEnd delimit the innermost enclosing function including
// its signature, for closure-capture detection.
func (w *hotWalker) walkNode(v *pkgView, node ast.Node, enclStart, enclEnd token.Pos) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if capName := w.capturedVar(v, e, enclStart, enclEnd); capName != "" {
				w.report(v, e.Pos(), "func literal captures %s and allocates a closure", capName)
			}
			// The literal may run on the hot path too; captures inside it
			// are judged against the literal's own extent.
			w.walkNode(v, e.Body, e.Pos(), e.End())
			return false
		case *ast.GoStmt:
			w.report(v, e.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			tv, ok := v.info.Types[e]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				w.report(v, e.Pos(), "slice literal allocates")
			case *types.Map:
				w.report(v, e.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					w.report(v, e.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringType(v.info, e.X) {
				w.report(v, e.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(v.info, e.Lhs[0]) {
				w.report(v, e.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			w.handleCall(v, e)
		}
		return true
	})
}

// capturedVar returns the name of a variable e captures from its
// enclosing function (receiver, parameters, or locals declared inside
// [enclStart, enclEnd) but outside the literal), or "".
func (w *hotWalker) capturedVar(v *pkgView, e *ast.FuncLit, enclStart, enclEnd token.Pos) string {
	name := ""
	ast.Inspect(e.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := v.info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		p := obj.Pos()
		outsideLit := p < e.Pos() || p >= e.End()
		inEncl := p >= enclStart && p < enclEnd
		if outsideLit && inEncl {
			name = obj.Name()
		}
		return true
	})
	return name
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// handleCall classifies one call: builtin allocation, conversion,
// static call (followed interprocedurally), or dynamic call (reported).
func (w *hotWalker) handleCall(v *pkgView, call *ast.CallExpr) {
	// An allow on the call both suppresses the finding and stops the
	// walk: the annotation vouches for the whole callee.
	if f := fileFor(v.files, call.Pos()); f != nil && allowed(w.pass.Fset, f, call.Pos(), "alloc") {
		return
	}

	// Builtins. panic is deliberately absent: terminal paths are cold.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := v.info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				w.report(v, call.Pos(), "make allocates")
			case "new":
				w.report(v, call.Pos(), "new allocates")
			case "append":
				w.report(v, call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	// Conversions: T(x) where T is a type, not a function.
	if tv, ok := v.info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		w.handleConversion(v, call, tv.Type)
		return
	}

	callee := staticCallee(v.info, call)
	if callee == nil {
		w.checkBoxing(v, call)
		w.report(v, call.Pos(), "dynamic call %s; annotate the allocation-free contract", callDesc(call))
		return
	}
	if isInterfaceMethodCall(v.info, call) {
		w.checkBoxing(v, call)
		w.report(v, call.Pos(), "interface method call %s dispatches dynamically; annotate the allocation-free contract", callDesc(call))
		return
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	path := pkg.Path()
	if hotCleanPkgs[path] {
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && hotCleanRecvPkgs[path] {
		return
	}
	if path == "fmt" {
		w.report(v, call.Pos(), "fmt.%s allocates", callee.Name())
		return
	}
	w.checkBoxing(v, call)
	target := w.view(path)
	if target == nil {
		w.report(v, call.Pos(), "call to %s.%s is outside the analyzed module; annotate the allocation-free contract", path, callee.Name())
		return
	}
	decl := target.declOf(callee)
	if decl == nil || decl.Body == nil {
		w.report(v, call.Pos(), "no source for %s.%s; annotate the allocation-free contract", path, callee.Name())
		return
	}
	if w.visited[callee] {
		return
	}
	w.visited[callee] = true
	w.walkBody(target, decl)
}

// handleConversion reports allocating conversions: string <-> []byte /
// []rune, and boxing a non-pointer-shaped value into an interface.
func (w *hotWalker) handleConversion(v *pkgView, call *ast.CallExpr, to types.Type) {
	arg := call.Args[0]
	tv, ok := v.info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if isStringy(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isStringy(from) {
		w.report(v, call.Pos(), "string conversion allocates")
		return
	}
	if types.IsInterface(to.Underlying()) && boxes(from) {
		w.report(v, call.Pos(), "conversion to interface boxes %s and allocates", from.String())
	}
}

// checkBoxing reports arguments whose passing converts a
// non-pointer-shaped concrete value into an interface parameter.
func (w *hotWalker) checkBoxing(v *pkgView, call *ast.CallExpr) {
	tv, ok := v.info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a ...spread passes the slice through
			}
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		atv, ok := v.info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		if boxes(atv.Type) {
			w.report(v, arg.Pos(), "argument boxes %s into an interface parameter and allocates", atv.Type.String())
		}
	}
}

// boxes reports whether converting a value of type t into an interface
// needs a heap allocation: anything not already an interface and not
// pointer-shaped (pointers, channels, maps, and funcs ride in the
// interface word directly).
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// staticCallee resolves call to the *types.Func it statically invokes,
// or nil for calls through func values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isInterfaceMethodCall reports whether call dispatches through an
// interface method table rather than to a concrete method.
func isInterfaceMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false // qualified identifier pkg.F
	}
	return types.IsInterface(s.Recv().Underlying())
}

// callDesc renders the call target for diagnostics.
func callDesc(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return "to " + fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return "to " + x.Name + "." + fun.Sel.Name
		}
		return "to " + fun.Sel.Name
	}
	return "through a func value"
}
