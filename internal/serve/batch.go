// The micro-batching drain: workers pull admitted jobs off the bounded
// queue, coalesce the ones that share a (graph, target) key, and price
// each coalesced group as one search.EvalBatch call over the shared
// cache and pool. Batching is opportunistic, not timed — a drain takes
// whatever has accumulated, so an idle server adds no latency and a busy
// one coalesces aggressively. No clock participates in grouping, which
// keeps the coalescing fully determined by arrival order.
package serve

import (
	"context"
	"strconv"
	"time"

	"repro/internal/fm"
	"repro/internal/fm/search"
)

// batchKey is the coalescing key: jobs agreeing on both graph
// fingerprint and target price against the same cache entries, so their
// schedules can be concatenated into one batch.
type batchKey struct {
	gfp uint64
	tgt fm.Target
}

// evalWorker is one drain loop. It exits when the queue is closed and
// empty — after delivering every job admitted before the close, which is
// what "drain, don't drop" means.
func (s *Server) evalWorker() {
	defer s.workerWG.Done()
	for {
		jobs := s.queue.drainUpTo(s.cfg.BatchMax)
		if jobs == nil {
			return
		}
		s.mQueueDepth.Set(float64(s.queue.depth()))
		s.processBatch(jobs)
	}
}

// processBatch groups one drain's jobs by batchKey in first-appearance
// order and prices each group with a single EvalBatch call. Every job
// receives exactly one evalResult.
func (s *Server) processBatch(jobs []*evalJob) {
	start := s.clock.Now()
	for _, j := range jobs {
		s.mQueueWait.Observe(start.Sub(j.enqueued))
	}

	groups := make(map[batchKey][]*evalJob, len(jobs))
	var order []batchKey
	for _, j := range jobs {
		k := batchKey{gfp: j.gfp, tgt: j.tgt}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], j)
	}

	for _, k := range order {
		s.priceGroup(groups[k])
	}

	elapsed := s.clock.Now().Sub(start)
	s.mBatches.Inc()
	s.mBatchJobs.Observe(float64(len(jobs)))
	s.observeBatch(len(jobs), elapsed)
}

// priceGroup prices one coalesced group. Jobs whose context already
// expired while queued are answered with their context error without
// costing any evaluation; the rest share one EvalBatch call under a
// server-owned context bounded by the latest live member deadline, so
// neither an impatient client nor one that disconnects mid-batch can
// cancel work its batch-mates still want.
//
// The group gets its own detached trace (route "batch"): the batch is
// server-owned work with no single parent request, so batch-mates link
// to it by annotation — each member trace carries the batch trace's ID
// — rather than by nesting. The batch trace is finished before any
// result is delivered, so traces land in the ring in a deterministic
// order: batch first, then its members as their handlers respond.
func (s *Server) priceGroup(group []*evalJob) {
	live := group[:0:0]
	for _, j := range group {
		if err := j.ctx.Err(); err != nil {
			j.result <- evalResult{err: err}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	s.mCoalesced.Add(int64(len(live) - 1))

	scheds := make([]fm.Schedule, 0, len(live))
	offsets := make([]int, len(live)+1)
	for i, j := range live {
		scheds = append(scheds, j.scheds...)
		offsets[i+1] = offsets[i] + len(j.scheds)
	}

	bt := s.tracer.StartDetached("batch", "coalesce")
	bt.Annotate("jobs", strconv.Itoa(len(live)))
	bt.Annotate("schedules", strconv.Itoa(len(scheds)))
	for _, j := range live {
		j.rt.Stage("batch")
		j.rt.Annotate("batch_id", bt.TraceID())
		j.rt.Annotate("batch_jobs", strconv.Itoa(len(live)))
	}

	first := live[0]
	// Warm the cache from the persistent atlas so EvalBatch prices only
	// mappings this process has never seen on disk or in memory.
	bt.Stage("store_warm")
	s.warmFromStore(first.gfp, first.tgt, scheds)
	ctx, cancel := batchCtx(live)
	defer cancel()
	bt.Stage("eval")
	costs, err := search.EvalBatch(ctx, s.pool, s.cache, first.g, first.gfp, scheds, first.tgt)
	bt.Stage("store_persist")
	if err == nil {
		s.storePutAll(first.gfp, first.tgt, scheds, costs)
	} else {
		bt.SetOutcome("error")
	}
	bt.Finish()
	for i, j := range live {
		if err != nil {
			j.result <- evalResult{err: err}
			continue
		}
		j.result <- evalResult{costs: costs[offsets[i]:offsets[i+1]], batch: len(live)}
	}
}

// batchCtx derives the context one coalesced batch evaluates under. It
// is server-owned — detached from every member's request context, so a
// client disconnecting mid-batch cannot cancel work its batch-mates
// still want — and bounded by the latest member deadline (unbounded if
// any member carries none), so the server stops pricing once no waiter
// could still use the answer. Members that time out earlier simply stop
// waiting; their own handler enforces their deadline.
func batchCtx(live []*evalJob) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, j := range live {
		dl, ok := j.ctx.Deadline()
		if !ok {
			return context.Background(), func() {} //lint:allow ctx(server-owned batch root: detachment from member contexts is the documented contract above)
		}
		if dl.After(latest) {
			latest = dl
		}
	}
	return context.WithDeadline(context.Background(), latest) //lint:allow ctx(server-owned batch root, deadline-bounded by the latest member)
}
