// Fixture for the nopanic analyzer: exported API of an internal
// package must return errors, not panic, unless annotated.
package nopanictest

import "errors"

func Exported(x int) error {
	if x < 0 {
		panic("negative") // want "exported Exported panics"
	}
	return errors.New("checked")
}

func unexported(x int) {
	if x < 0 {
		panic("unexported functions may assert") // fine
	}
}

type Public struct{ n int }

func (p *Public) Get(i int) int {
	if i < 0 || i >= p.n {
		panic("out of range") // want "exported Get panics"
	}
	return i
}

type hidden struct{}

func (hidden) Method() { panic("method on unexported type") } // fine

func ExportedNested() func() {
	return func() {
		panic("escapes via the exported API") // want "exported ExportedNested panics"
	}
}

func ExportedAllowedAbove(x int) {
	if x < 0 {
		//lint:allow panic(unreachable: every caller validates x first)
		panic("negative")
	}
}

func ExportedAllowedTrailing(x int) {
	if x < 0 {
		panic("negative") //lint:allow panic(invariant check on internal state)
	}
}

//lint:allow panic(assertion helper; documented to panic on misuse)
func MustPositive(x int) int {
	if x <= 0 {
		panic("not positive")
	}
	return x
}

func ExportedEmptyReason(x int) {
	if x < 0 {
		//lint:allow panic()
		panic("a bare allow with no reason does not count") // want "exported ExportedEmptyReason panics"
	}
}
