// Package conv implements 1-D convolution as an F&M function with the
// classic accelerator dataflows the panel paper name-checks:
// "weight-stationary dataflows for DNN accelerators, systolic arrays"
// (Dally, section 3). The same multiply-accumulate function is mapped
// three ways — weight-stationary (weights pinned to PEs, inputs and
// partial sums flow), output-stationary (outputs pinned, weights and
// inputs flow), and the serial projection — and the explicit cost model
// attributes the traffic to each tensor, which is exactly what
// distinguishes one dataflow from another.
package conv

import (
	"fmt"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Conv is a materialized 1-D valid convolution y[i] = sum_k w[k]*x[i+k],
// i in [0, N-K], as a dataflow graph: one MAC node per (output, tap).
type Conv struct {
	Graph *fm.Graph
	// X and W are the input nodes for the signal and the taps.
	X, W []fm.NodeID
	// Out[i] is the node producing y[i].
	Out []fm.NodeID
	// mac[(i,k)] is the node accumulating tap k into output i.
	mac [][]fm.NodeID
	// N is the signal length, K the tap count.
	N, K int
}

// Build constructs the convolution function for a length-n signal and k
// taps.
func Build(n, k int) *Conv {
	if k <= 0 || n < k {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("conv: invalid sizes n=%d k=%d", n, k))
	}
	b := fm.NewBuilder(fmt.Sprintf("conv%dx%d", n, k))
	c := &Conv{N: n, K: k}
	c.X = make([]fm.NodeID, n)
	for i := range c.X {
		c.X[i] = b.Input(32)
	}
	c.W = make([]fm.NodeID, k)
	for i := range c.W {
		c.W[i] = b.Input(32)
	}
	outs := n - k + 1
	c.mac = make([][]fm.NodeID, outs)
	c.Out = make([]fm.NodeID, outs)
	for i := 0; i < outs; i++ {
		c.mac[i] = make([]fm.NodeID, k)
		for t := 0; t < k; t++ {
			// MAC node: multiply w[t]*x[i+t] and add the running partial.
			deps := []fm.NodeID{c.W[t], c.X[i+t]}
			if t > 0 {
				deps = append(deps, c.mac[i][t-1])
			}
			nd := b.Op(tech.OpFMA, 32, deps...)
			b.Label(nd, "mac(y=%d,t=%d)", i, t)
			c.mac[i][t] = nd
		}
		c.Out[i] = c.mac[i][k-1]
		b.MarkOutput(c.Out[i])
	}
	c.Graph = b.Build()
	return c
}

// Outs returns the number of outputs (N-K+1).
func (c *Conv) Outs() int { return c.N - c.K + 1 }

// Interpret runs the function semantically and returns y.
func (c *Conv) Interpret(x, w []int64) []int64 {
	if len(x) != c.N || len(w) != c.K {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("conv: got %d/%d values for n=%d k=%d", len(x), len(w), c.N, c.K))
	}
	inputs := append(append([]int64(nil), x...), w...)
	vals, err := fm.Interpret(c.Graph, inputs, func(n fm.NodeID, deps []int64) int64 {
		// deps are [w, x] or [w, x, partial].
		acc := deps[0] * deps[1]
		if len(deps) == 3 {
			acc += deps[2]
		}
		return acc
	})
	if err != nil {
		//lint:allow panic(unreachable: arity checked immediately above)
		panic(err) // arity checked above
	}
	out := make([]int64, len(c.Out))
	for i, nd := range c.Out {
		out[i] = vals[nd]
	}
	return out
}

// Reference computes the convolution directly.
func Reference(x, w []int64) []int64 {
	outs := len(x) - len(w) + 1
	if outs <= 0 {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("conv: signal %d shorter than kernel %d", len(x), len(w)))
	}
	y := make([]int64, outs)
	for i := range y {
		var acc int64
		for t := range w {
			acc += w[t] * x[i+t]
		}
		y[i] = acc
	}
	return y
}

// stride returns a legal unit step: every dependence in the dataflows
// below spans at most one hop per unit step and one FMA per step.
func stride(tgt fm.Target) int64 {
	s := tgt.OpCycles(tech.OpFMA, 32)
	if h := tgt.TransitCycles(1); h > s {
		s = h
	}
	return s + tgt.TransitCycles(1)
}

// WeightStationary maps the convolution onto a K-PE linear array: tap t
// is pinned at PE t forever (zero weight traffic); signal values stream
// in from PE 0; partial sums hop right one PE per step. MAC (i,t) runs at
// PE t at step i+2t.
func (c *Conv) WeightStationary(tgt fm.Target) fm.Schedule {
	if tgt.Grid.Width < c.K {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("conv: weight-stationary needs %d PEs, grid is %d wide", c.K, tgt.Grid.Width))
	}
	s := stride(tgt)
	sched := make(fm.Schedule, c.Graph.NumNodes())
	for j, nd := range c.X {
		sched[nd] = fm.Assignment{Place: geom.Pt(0, 0), Time: int64(j) * s}
	}
	for t, nd := range c.W {
		sched[nd] = fm.Assignment{Place: geom.Pt(t, 0), Time: 0}
	}
	for i := range c.mac {
		for t, nd := range c.mac[i] {
			sched[nd] = fm.Assignment{Place: geom.Pt(t, 0), Time: int64(i+2*t+1) * s}
		}
	}
	return sched
}

// OutputStationary maps the convolution onto one PE per output: output i
// accumulates in place at PE i (zero partial-sum traffic); weights and
// signal values stream in from PE 0. MAC (i,t) runs at PE i at step
// 2i+t.
func (c *Conv) OutputStationary(tgt fm.Target) fm.Schedule {
	outs := c.Outs()
	if tgt.Grid.Width < outs {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("conv: output-stationary needs %d PEs, grid is %d wide", outs, tgt.Grid.Width))
	}
	s := stride(tgt)
	sched := make(fm.Schedule, c.Graph.NumNodes())
	for j, nd := range c.X {
		sched[nd] = fm.Assignment{Place: geom.Pt(0, 0), Time: int64(j) * s}
	}
	for t, nd := range c.W {
		sched[nd] = fm.Assignment{Place: geom.Pt(0, 0), Time: int64(t) * s}
	}
	for i := range c.mac {
		for t, nd := range c.mac[i] {
			sched[nd] = fm.Assignment{Place: geom.Pt(i, 0), Time: int64(2*i+t+1) * s}
		}
	}
	return sched
}

// Traffic attributes a schedule's bit-hops to the three tensors.
type Traffic struct {
	Weights, Signal, Partials int64
}

// AttributeTraffic splits the mapping's communication by tensor.
func (c *Conv) AttributeTraffic(sched fm.Schedule) Traffic {
	isW := make(map[fm.NodeID]bool, len(c.W))
	for _, nd := range c.W {
		isW[nd] = true
	}
	isX := make(map[fm.NodeID]bool, len(c.X))
	for _, nd := range c.X {
		isX[nd] = true
	}
	return Traffic{
		Weights: fm.TrafficFrom(c.Graph, sched, func(n fm.NodeID) bool { return isW[n] }),
		Signal:  fm.TrafficFrom(c.Graph, sched, func(n fm.NodeID) bool { return isX[n] }),
		Partials: fm.TrafficFrom(c.Graph, sched, func(n fm.NodeID) bool {
			return !isW[n] && !isX[n] && !c.Graph.IsInput(n)
		}),
	}
}
