package fm

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// editRec is the paper's edit-distance recurrence over an n x n domain.
func editRec(n int) Recurrence {
	return Recurrence{
		Name: "editdist",
		Dims: []int{n, n},
		Deps: [][]int{{1, 1}, {1, 0}, {0, 1}},
		Op:   tech.OpAdd,
		Bits: 32,
	}
}

func TestRecurrenceValidate(t *testing.T) {
	if err := editRec(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Recurrence{
		{Name: "empty", Bits: 32},
		{Name: "ext", Dims: []int{0}, Bits: 32},
		{Name: "bits", Dims: []int{4}, Bits: 0},
		{Name: "rank", Dims: []int{4, 4}, Deps: [][]int{{1}}, Bits: 32},
		{Name: "zero", Dims: []int{4}, Deps: [][]int{{0}}, Bits: 32},
		{Name: "neg", Dims: []int{4, 4}, Deps: [][]int{{-1, 1}}, Bits: 32},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: expected validation error", r.Name)
		}
	}
	// Lexicographically positive with a negative trailing component is fine.
	ok := Recurrence{Name: "skew", Dims: []int{4, 4}, Deps: [][]int{{1, -1}}, Bits: 32}
	if err := ok.Validate(); err != nil {
		t.Errorf("skew: %v", err)
	}
}

func TestMaterializeEditDistance(t *testing.T) {
	g, dom, err := editRec(4).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if dom.Size() != 16 {
		t.Fatalf("domain size = %d", dom.Size())
	}
	// Corner (0,0) has no in-domain deps.
	if d := g.Deps(dom.Node(0, 0)); len(d) != 0 {
		t.Errorf("H(0,0) deps = %v", d)
	}
	// Edge (0,2) depends only on (0,1).
	if d := g.Deps(dom.Node(0, 2)); len(d) != 1 || d[0] != dom.Node(0, 1) {
		t.Errorf("H(0,2) deps = %v", d)
	}
	// Interior (2,2) depends on (1,1), (1,2), (2,1).
	d := g.Deps(dom.Node(2, 2))
	want := []NodeID{dom.Node(1, 1), dom.Node(1, 2), dom.Node(2, 1)}
	if len(d) != 3 || d[0] != want[0] || d[1] != want[1] || d[2] != want[2] {
		t.Errorf("H(2,2) deps = %v, want %v", d, want)
	}
	// Only the final corner is unconsumed.
	outs := g.Outputs()
	if len(outs) != 1 || outs[0] != dom.Node(3, 3) {
		t.Errorf("outputs = %v", outs)
	}
	// The longest chain is a monotone staircase of 2n-1 cells.
	if dep := g.Depth(); dep != 7 {
		t.Errorf("depth = %d, want 7", dep)
	}
}

func TestDomainRoundTrip(t *testing.T) {
	_, dom, err := Recurrence{Name: "r", Dims: []int{3, 4, 5}, Op: tech.OpAdd, Bits: 32}.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 3)
	for lin := 0; lin < dom.Size(); lin++ {
		dom.Index(NodeID(lin), idx)
		if got := dom.Node(idx...); got != NodeID(lin) {
			t.Fatalf("round trip %d -> %v -> %d", lin, idx, got)
		}
	}
	if len(dom.Dims()) != 3 {
		t.Errorf("Dims = %v", dom.Dims())
	}
	assertPanics(t, "bad rank", func() { dom.Node(1, 2) })
	assertPanics(t, "out of range", func() { dom.Node(3, 0, 0) })
	assertPanics(t, "bad dst", func() { dom.Index(0, make([]int, 2)) })
}

func TestAntiDiagonalLegalAcrossP(t *testing.T) {
	const n = 24
	g, dom, err := editRec(n).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		tgt := DefaultTarget(p, 1)
		stride := MinAntiDiagonalStride(tgt, tech.OpAdd, 32, n, p)
		sched := AntiDiagonalSchedule(dom, p, stride, geom.Pt(0, 0))
		if err := Check(g, sched, tgt); err != nil {
			t.Errorf("P=%d stride=%d: %v", p, stride, err)
		}
	}
}

func TestAntiDiagonalSpeedsUpWithP(t *testing.T) {
	const n = 24
	g, dom, err := editRec(n).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// Start at P=2: with 1 mm pitch a 2-processor systolic array is
	// transit-bound and loses to the co-located P=1 mapping — exactly the
	// communication-dominance effect the cost model exists to expose.
	var prev int64
	for i, p := range []int{2, 4, 8} {
		tgt := DefaultTarget(p, 1)
		tgt.MemWordsPerNode = 1 << 20
		stride := MinAntiDiagonalStride(tgt, tech.OpAdd, 32, n, p)
		sched := AntiDiagonalSchedule(dom, p, stride, geom.Pt(0, 0))
		c, err := Evaluate(g, sched, tgt, EvalOptions{})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if i > 0 && c.Cycles >= prev {
			t.Errorf("P=%d (%d cycles) not faster than previous (%d)", p, c.Cycles, prev)
		}
		prev = c.Cycles
	}
}

func TestAntiDiagonalNearestNeighbourOnly(t *testing.T) {
	// All traffic in the anti-diagonal mapping is distance <= P-1 hop
	// (nearest neighbour, except the wrap). Bit-hops per cell stays O(1)
	// for fixed P as n grows — locality the serial-to-DRAM version lacks.
	const n = 16
	g, dom, err := editRec(n).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	p := 4
	tgt := DefaultTarget(p, 1)
	tgt.MemWordsPerNode = 1 << 20
	stride := MinAntiDiagonalStride(tgt, tech.OpAdd, 32, n, p)
	sched := AntiDiagonalSchedule(dom, p, stride, geom.Pt(0, 0))
	c, err := Evaluate(g, sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Each cell sends at most one value one hop (to its i+1 row) plus the
	// wrap: total bit-hops bounded by cells * 32 * small constant.
	maxBitHops := int64(n*n) * 32 * 2
	if c.BitHops > maxBitHops {
		t.Errorf("BitHops = %d, want <= %d (nearest-neighbour traffic)", c.BitHops, maxBitHops)
	}
}

func TestScheduleByIndex(t *testing.T) {
	_, dom, err := editRec(3).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	sched := ScheduleByIndex(dom, func(idx []int) Assignment {
		return Assignment{Place: geom.Pt(idx[0], idx[1]), Time: int64(idx[0]*10 + idx[1])}
	})
	if sched[dom.Node(2, 1)].Place != geom.Pt(2, 1) || sched[dom.Node(2, 1)].Time != 21 {
		t.Errorf("assignment = %+v", sched[dom.Node(2, 1)])
	}
}

func TestAntiDiagonalPanics(t *testing.T) {
	_, dom2, _ := editRec(3).Materialize()
	assertPanics(t, "bad p", func() { AntiDiagonalSchedule(dom2, 0, 1, geom.Pt(0, 0)) })
	assertPanics(t, "bad stride", func() { AntiDiagonalSchedule(dom2, 1, 0, geom.Pt(0, 0)) })
	_, dom3, err := Recurrence{Name: "r3", Dims: []int{2, 2, 2}, Op: tech.OpAdd, Bits: 32}.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "bad rank", func() { AntiDiagonalSchedule(dom3, 2, 1, geom.Pt(0, 0)) })
	assertPanics(t, "bad stride args", func() {
		MinAntiDiagonalStride(DefaultTarget(2, 2), tech.OpAdd, 32, 0, 2)
	})
}

func TestMaterializeInvalid(t *testing.T) {
	if _, _, err := (Recurrence{Name: "bad", Dims: []int{-1}, Bits: 32}).Materialize(); err == nil {
		t.Fatal("want error")
	}
}
