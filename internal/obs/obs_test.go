package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsSafe pins the disabled-path contract: every method on
// a nil registry and nil instruments is a no-op, never a panic. The
// simulators rely on this to run instrumented call sites with zero
// configuration.
func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	g := r.Gauge("x")
	g.Set(1)
	g.Add(2)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %g, want 0", got)
	}
	h := r.Histogram("x", []float64{1, 2})
	h.Observe(1.5)
	if got := h.Count(); got != 0 {
		t.Fatalf("nil histogram count = %d, want 0", got)
	}
	tm := r.Timer("x")
	tm.Observe(time.Second)
	tm.Start()() // must not be nil
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Timers) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("search.evals")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if r.Counter("search.evals") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("temp")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCounts := []int64{2, 1, 1, 1} // <=1: {0.5,1}; <=10: {5}; <=100: {50}; over: {500}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Min != 0.5 || s.Max != 500 {
		t.Fatalf("min/max = %g/%g, want 0.5/500", s.Min, s.Max)
	}
	if s.Sum != 556.5 {
		t.Fatalf("sum = %g, want 556.5", s.Sum)
	}
	if s.Mean != 556.5/5 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if s.P50 != 5 {
		t.Fatalf("p50 = %g, want 5", s.P50)
	}
}

// TestHistogramReservoirThinning drives a histogram far past the
// reservoir cap and checks the sample stays bounded while percentiles
// remain sane.
func TestHistogramReservoirThinning(t *testing.T) {
	r := New()
	h := r.Histogram("big", []float64{1e9})
	n := 10 * reservoirCap
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	h.mu.Lock()
	sampleLen := len(h.sample)
	h.mu.Unlock()
	if sampleLen > reservoirCap {
		t.Fatalf("sample grew to %d, cap %d", sampleLen, reservoirCap)
	}
	s := h.snapshot()
	if s.Count != int64(n) {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	mid := float64(n) / 2
	if s.P50 < mid*0.5 || s.P50 > mid*1.5 {
		t.Fatalf("p50 = %g, want near %g", s.P50, mid)
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines;
// run under -race this pins the concurrency-safety contract, and the
// totals check that no increment is lost.
func TestConcurrentInstruments(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", []float64{0.5})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["c"]; got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := s.Gauges["g"]; got != workers*per {
		t.Fatalf("gauge = %g, want %d", got, workers*per)
	}
	if got := s.Histograms["h"].Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(3.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	r.Timer("t").Observe(2 * time.Millisecond)

	var buf1, buf2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", buf1.String(), buf2.String())
	}
	var back Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["a"] != 1 || back.Counters["b"] != 2 {
		t.Fatalf("round-tripped counters wrong: %+v", back.Counters)
	}
	// Keys marshal sorted, so "a" must appear before "b".
	s := buf1.String()
	if strings.Index(s, `"a"`) > strings.Index(s, `"b"`) {
		t.Fatalf("counter keys not sorted in JSON:\n%s", s)
	}
	names := r.Snapshot().Names()
	want := []string{"a", "b", "h", "t", "z"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestTimerRecordsSeconds(t *testing.T) {
	r := New()
	tm := r.Timer("task")
	tm.Observe(500 * time.Millisecond)
	s := r.Snapshot().Timers["task"]
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.Sum != 0.5 {
		t.Fatalf("sum = %g, want 0.5 s", s.Sum)
	}
	done := tm.Start()
	done()
	if got := r.Snapshot().Timers["task"].Count; got != 2 {
		t.Fatalf("count after Start()() = %d, want 2", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	New().Histogram("bad", []float64{2, 1})
}
