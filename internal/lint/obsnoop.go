package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// obsProtected maps each observability package path to the set of its
// types that must only travel as pointers obtained from the package's
// own constructors: their nil receiver IS the disabled path, and their
// guts (mutexes, atomics) must never be copied. The map value's alias
// is the package's natural import name, used in diagnostics.
var obsProtected = map[string]protectedPkg{
	"repro/internal/obs": {
		alias: "obs",
		types: map[string]bool{
			"Registry": true, "Counter": true, "Gauge": true, "Histogram": true, "Timer": true,
		},
	},
	"repro/internal/obs/tracing": {
		alias: "tracing",
		types: map[string]bool{
			"Tracer": true, "Request": true,
		},
	},
}

type protectedPkg struct {
	alias string
	types map[string]bool
}

// ObsNoop enforces the "nil handle is a zero-overhead no-op" contract
// shared by obs and obs/tracing: registries, instruments, tracers and
// request traces are used only through their nil-safe pointer API.
// Constructing one with a composite literal or new() bypasses the
// package constructor and yields an unusable zero value; declaring or
// copying one as a value splits its atomics and breaks the
// shared-handle semantics. The runtime backstop is the nil-path test
// suites (including the zero-allocation gates); this check catches the
// misuse before anything runs.
var ObsNoop = &analysis.Analyzer{
	Name: "obsnoop",
	Doc: "obs and obs/tracing handles must be used via their nil-safe pointer API: " +
		"no composite literals, no new(), no value declarations or copies " +
		"(escape hatch: //lint:allow obs(reason))",
	Run: runObsNoop,
}

func runObsNoop(pass *analysis.Pass) (interface{}, error) {
	if _, self := obsProtected[pass.Pkg.Path()]; self {
		return nil, nil // the package owns its own internals
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.Field:
				checkObsValueType(pass, file, e.Type, fieldName(e))
			case *ast.ValueSpec:
				if e.Type != nil {
					name := ""
					if len(e.Names) > 0 {
						name = e.Names[0].Name
					}
					checkObsValueType(pass, file, e.Type, name)
				}
			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[e]
				if !ok {
					return true
				}
				t := tv.Type
				if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
					t = p.Elem()
				}
				if name := protectedObsType(t); name != "" {
					if !allowed(pass.Fset, file, e.Pos(), "obs") {
						pass.Reportf(e.Pos(),
							"composite literal of %s bypasses the constructor; the zero value is not usable", name)
					}
				}
			case *ast.CallExpr:
				id, ok := e.Fun.(*ast.Ident)
				if !ok || id.Name != "new" || len(e.Args) != 1 {
					return true
				}
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[e.Args[0]]; ok {
					if name := protectedObsType(tv.Type); name != "" {
						if !allowed(pass.Fset, file, e.Pos(), "obs") {
							pass.Reportf(e.Pos(),
								"new(%s) bypasses the constructor; the zero value is not usable", name)
						}
					}
				}
			case *ast.StarExpr:
				// A *p dereference that yields a protected struct value
				// is a copy about to happen (assignment, argument, ...).
				tv, ok := pass.TypesInfo.Types[e]
				if !ok || !tv.IsValue() {
					return true
				}
				if name := protectedObsType(tv.Type); name != "" {
					if !allowed(pass.Fset, file, e.Pos(), "obs") {
						pass.Reportf(e.Pos(),
							"dereference copies %s; pass the *%s pointer instead", name, name)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkObsValueType flags a declaration (var, struct field, parameter,
// or result) whose type is a protected observability type by value.
func checkObsValueType(pass *analysis.Pass, file *ast.File, typeExpr ast.Expr, declName string) {
	tv, ok := pass.TypesInfo.Types[typeExpr]
	if !ok || !tv.IsType() {
		return
	}
	name := protectedObsType(tv.Type)
	if name == "" || allowed(pass.Fset, file, typeExpr.Pos(), "obs") {
		return
	}
	what := "declaration"
	if declName != "" {
		what = declName
	}
	pass.Reportf(typeExpr.Pos(),
		"%s declared as %s value; use *%s (copying breaks the nil no-op contract)",
		what, name, name)
}

func fieldName(f *ast.Field) string {
	if len(f.Names) > 0 {
		return f.Names[0].Name
	}
	return ""
}

// protectedObsType returns the package-qualified type name (e.g.
// "obs.Counter", "tracing.Tracer") if t is one of the protected
// observability struct types, or "".
func protectedObsType(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	pkg, ok := obsProtected[obj.Pkg().Path()]
	if !ok || !pkg.types[obj.Name()] {
		return ""
	}
	return pkg.alias + "." + obj.Name()
}
