// Restart warmth: the persistent atlas under the serving layer. These
// tests run a server with a store, kill it (Close), and prove the next
// server over the same directory answers previously priced work from
// disk — store hits counted, no re-evaluation — and that searches are
// improved by (and marked with) the stored best.
package serve

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
)

// openTestStore opens an atlas in dir, failing the test on error.
func openTestStore(t *testing.T, dir string, reg *obs.Registry) *store.Store {
	t.Helper()
	st, err := store.Open(store.OS{}, dir, store.Options{Obs: reg})
	if err != nil {
		t.Fatalf("store open: %v", err)
	}
	return st
}

func counterValue(reg *obs.Registry, name string) int64 {
	snap := reg.Snapshot()
	return snap.Counters[name]
}

func TestEvalWarmFromStoreAfterRestart(t *testing.T) {
	dir := t.TempDir()

	// First life: price two schedules, which must land in the atlas.
	reg1 := obs.New()
	st1 := openTestStore(t, dir, reg1)
	s1 := newTestServer(t, func(c *Config) { c.Store = st1; c.Obs = reg1 })
	var first EvalResponse
	if code, rec := post(t, s1, "POST", "/v1/eval", evalBody, &first); code != 200 {
		t.Fatalf("first-life eval: %d %s", code, rec.Body.String())
	}
	if got := counterValue(reg1, "serve.store.puts"); got != 2 {
		t.Fatalf("first life persisted %d mappings, want 2", got)
	}
	if got := counterValue(reg1, "serve.store.hits"); got != 0 {
		t.Fatalf("first life hit the store %d times; nothing was stored yet", got)
	}
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	// Second life: a fresh process (new cache, new registry) over the
	// same directory answers the identical request from the store.
	reg2 := obs.New()
	st2 := openTestStore(t, dir, reg2)
	if st2.Len() != 2 {
		t.Fatalf("recovered store holds %d mappings, want 2", st2.Len())
	}
	s2 := newTestServer(t, func(c *Config) { c.Store = st2; c.Obs = reg2 })
	defer st2.Close()
	var second EvalResponse
	if code, rec := post(t, s2, "POST", "/v1/eval", evalBody, &second); code != 200 {
		t.Fatalf("second-life eval: %d %s", code, rec.Body.String())
	}
	for i := range first.Costs {
		if second.Costs[i] != first.Costs[i] {
			t.Fatalf("restarted answer %d differs: %+v vs %+v", i, second.Costs[i], first.Costs[i])
		}
	}
	if got := counterValue(reg2, "serve.store.hits"); got != 2 {
		t.Fatalf("second life hit the store %d times, want 2", got)
	}
	// Both schedules came from disk, so the eval cache priced nothing:
	// its misses stayed zero (warmFromStore fed it before EvalBatch).
	// The cache gauges publish on scrape, so go through /v1/metrics.
	var snap obs.Snapshot
	if code, _ := post(t, s2, "GET", "/v1/metrics", "", &snap); code != 200 {
		t.Fatalf("metrics scrape: %d", code)
	}
	if misses := snap.Gauges["search.evalcache.misses"]; misses != 0 {
		t.Fatalf("restarted eval re-priced %g mappings; want all from store", misses)
	}
	if got := counterValue(reg2, "serve.store.puts"); got != 0 {
		t.Fatalf("second life re-persisted %d mappings; dedup should yield 0 appends", got)
	}
}

func TestCacheOnlyAnswersFromStoreInShedMode(t *testing.T) {
	dir := t.TempDir()
	reg1 := obs.New()
	st1 := openTestStore(t, dir, reg1)
	s1 := newTestServer(t, func(c *Config) { c.Store = st1; c.Obs = reg1 })
	if code, rec := post(t, s1, "POST", "/v1/eval", evalBody, nil); code != 200 {
		t.Fatalf("seed eval: %d %s", code, rec.Body.String())
	}
	s1.Close()
	st1.Close()

	// Restarted server in shed mode: the degraded cache-only path must
	// reach through to the store.
	reg2 := obs.New()
	st2 := openTestStore(t, dir, reg2)
	defer st2.Close()
	s2 := newTestServer(t, func(c *Config) { c.Store = st2; c.Obs = reg2 })
	s2.SetMode(ModeShed)
	var resp EvalResponse
	if code, rec := post(t, s2, "POST", "/v1/eval", evalBody, &resp); code != 200 {
		t.Fatalf("shed eval after restart: %d %s", code, rec.Body.String())
	}
	if !resp.Degraded {
		t.Fatal("shed-mode answer not marked degraded")
	}
	if got := counterValue(reg2, "serve.store.hits"); got != 2 {
		t.Fatalf("shed-mode answer hit the store %d times, want 2", got)
	}
}

func TestSearchServesStoredBestAfterRestart(t *testing.T) {
	dir := t.TempDir()
	searchBody := `{
		"recurrence": {"dims": [6, 6], "deps": [[1, 0], [0, 1]]},
		"target": {"width": 4},
		"kind": "anneal", "objective": "time", "iters": 300, "seed": 3
	}`

	// First life: run a real search; its winner lands in the atlas.
	reg1 := obs.New()
	st1 := openTestStore(t, dir, reg1)
	s1 := newTestServer(t, func(c *Config) { c.Store = st1; c.Obs = reg1 })
	var first SearchResponse
	if code, rec := post(t, s1, "POST", "/v1/search", searchBody, &first); code != 200 {
		t.Fatalf("first search: %d %s", code, rec.Body.String())
	}
	if first.FromStore {
		t.Fatal("first-life search claims a stored best; the store was empty")
	}
	s1.Close()
	st1.Close()

	// Second life: a crippled search (1 iteration) must be upgraded to
	// the stored best from the first life — or at least never answer
	// worse than it.
	reg2 := obs.New()
	st2 := openTestStore(t, dir, reg2)
	defer st2.Close()
	s2 := newTestServer(t, func(c *Config) { c.Store = st2; c.Obs = reg2 })
	weak := `{
		"recurrence": {"dims": [6, 6], "deps": [[1, 0], [0, 1]]},
		"target": {"width": 4},
		"kind": "anneal", "objective": "time", "iters": 1, "seed": 99
	}`
	var second SearchResponse
	if code, rec := post(t, s2, "POST", "/v1/search", weak, &second); code != 200 {
		t.Fatalf("second search: %d %s", code, rec.Body.String())
	}
	if second.Best.Objective > first.Best.Objective {
		t.Fatalf("restarted search answered %g, worse than the stored best %g",
			second.Best.Objective, first.Best.Objective)
	}
	if second.Best.Objective < first.Best.Objective && !second.FromStore {
		// Equal values can come from the weak search itself; a strictly
		// better answer can only have come from the atlas.
		t.Fatal("answer beat the weak search but is not marked from_store")
	}
}

func TestStoreUnhealthyGaugeTripsOnQuarantine(t *testing.T) {
	dir := t.TempDir()
	reg1 := obs.New()
	st1 := openTestStore(t, dir, reg1)
	s1 := newTestServer(t, func(c *Config) { c.Store = st1; c.Obs = reg1 })
	if code, rec := post(t, s1, "POST", "/v1/eval", evalBody, nil); code != 200 {
		t.Fatalf("seed eval: %d %s", code, rec.Body.String())
	}
	s1.Close()
	st1.Close()
	if g := reg1.Snapshot().Gauges["serve.store.unhealthy"]; g != 0 {
		t.Fatalf("healthy store gauged unhealthy: %g", g)
	}

	corruptFirstSegment(t, dir)

	reg2 := obs.New()
	st2 := openTestStore(t, dir, reg2)
	defer st2.Close()
	if st2.Report().Healthy() {
		t.Fatal("corrupted store recovered healthy; fixture broken")
	}
	s2 := newTestServer(t, func(c *Config) { c.Store = st2; c.Obs = reg2 })
	_ = s2
	if g := reg2.Snapshot().Gauges["serve.store.unhealthy"]; g != 1 {
		t.Fatalf("quarantined store gauged %g, want 1", g)
	}
}

// corruptFirstSegment flips a byte in the magic of the first segment so
// recovery must quarantine it.
func corruptFirstSegment(t *testing.T, dir string) {
	t.Helper()
	name := filepath.Join(dir, "atlas-00000000.log")
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}
}
