package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fm"
	"repro/internal/obs"
)

// newTestServer builds a server with test-friendly defaults; overrides
// tweak the config before construction.
func newTestServer(t *testing.T, override func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		PoolWorkers:      2,
		QueueDepth:       8,
		EvalWorkers:      1,
		BatchMax:         8,
		MaxSearches:      1,
		AdmissionControl: true,
		Clock:            NewFakeClock(time.Unix(1000, 0)),
		Obs:              obs.New(),
	}
	if override != nil {
		override(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// post runs one request through the handler and decodes the JSON reply.
func post(t *testing.T, s *Server, method, path, body string, out any) (int, *httptest.ResponseRecorder) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s response: %v\n%s", method, path, err, rec.Body.String())
		}
	}
	return rec.Code, rec
}

const evalBody = `{
	"recurrence": {"dims": [6, 6], "deps": [[1, 0], [0, 1]]},
	"target": {"width": 4},
	"schedules": [{"kind": "serial"}, {"kind": "antidiagonal"}]
}`

func TestEvalInlineRecurrence(t *testing.T) {
	s := newTestServer(t, nil)
	var resp EvalResponse
	code, rec := post(t, s, "POST", "/v1/eval", evalBody, &resp)
	if code != 200 {
		t.Fatalf("status %d: %s", code, rec.Body.String())
	}
	if len(resp.Costs) != 2 {
		t.Fatalf("want 2 costs, got %d", len(resp.Costs))
	}
	if resp.Degraded {
		t.Fatalf("fresh eval must not be degraded")
	}
	if resp.Costs[0].Cycles <= 0 || resp.Costs[1].Cycles <= 0 {
		t.Fatalf("degenerate costs: %+v", resp.Costs)
	}
	if resp.Costs[0].PlacesUsed != 1 || resp.Costs[1].PlacesUsed != 4 {
		t.Fatalf("serial uses %d places, antidiagonal %d; want 1 and 4",
			resp.Costs[0].PlacesUsed, resp.Costs[1].PlacesUsed)
	}
	// The response costs must match a direct evaluation: the service adds
	// machinery, never different answers.
	rec2, dom, err := (&RecurrenceSpec{Dims: []int{6, 6}, Deps: [][]int{{1, 0}, {0, 1}}}).materialize()
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := (&TargetSpec{Width: 4}).target()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := (&ScheduleSpec{Kind: "serial"}).build(rec2, dom, tgt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fm.Evaluate(rec2, sched, tgt, fm.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Costs[0] != want {
		t.Fatalf("served cost %+v != direct evaluation %+v", resp.Costs[0], want)
	}
}

func TestEvalFingerprintRoundTrip(t *testing.T) {
	s := newTestServer(t, nil)
	var first EvalResponse
	if code, rec := post(t, s, "POST", "/v1/eval", evalBody, &first); code != 200 {
		t.Fatalf("inline eval: %d %s", code, rec.Body.String())
	}
	byFP := fmt.Sprintf(`{
		"graph_fp": %q,
		"target": {"width": 4},
		"schedules": [{"kind": "serial"}]
	}`, first.GraphFP)
	var second EvalResponse
	if code, rec := post(t, s, "POST", "/v1/eval", byFP, &second); code != 200 {
		t.Fatalf("fingerprint eval: %d %s", code, rec.Body.String())
	}
	if second.Costs[0] != first.Costs[0] {
		t.Fatalf("fingerprint eval cost %+v != inline cost %+v", second.Costs[0], first.Costs[0])
	}

	if code, _ := post(t, s, "POST", "/v1/eval",
		`{"graph_fp": "deadbeef", "target": {"width": 4}, "schedules": [{"kind": "serial"}]}`, nil); code != 404 {
		t.Fatalf("unknown fingerprint: want 404, got %d", code)
	}
}

func TestEvalRejectsMalformedRequests(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{`, 400},
		{"unknown field", `{"recurrence": {"dims": [2], "deps": []}, "target": {"width": 2}, "schedules": [{"kind": "serial"}], "bogus": 1}`, 400},
		{"trailing data", evalBody + `{"extra": true}`, 400},
		{"no schedules", `{"recurrence": {"dims": [2], "deps": []}, "target": {"width": 2}, "schedules": []}`, 422},
		{"no graph", `{"target": {"width": 2}, "schedules": [{"kind": "serial"}]}`, 422},
		{"bad op", `{"recurrence": {"dims": [2], "deps": [], "op": "teleport"}, "target": {"width": 2}, "schedules": [{"kind": "serial"}]}`, 422},
		{"huge domain", `{"recurrence": {"dims": [1024, 1024], "deps": []}, "target": {"width": 2}, "schedules": [{"kind": "serial"}]}`, 422},
		{"bad grid", `{"recurrence": {"dims": [2], "deps": []}, "target": {"width": 0}, "schedules": [{"kind": "serial"}]}`, 422},
		{"bad schedule kind", `{"recurrence": {"dims": [2], "deps": []}, "target": {"width": 2}, "schedules": [{"kind": "psychic"}]}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, rec := post(t, s, "POST", "/v1/eval", tc.body, nil)
			if code != tc.want {
				t.Fatalf("want %d, got %d: %s", tc.want, code, rec.Body.String())
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("error responses must carry the envelope: %s", rec.Body.String())
			}
		})
	}
}

// TestEvalCoalescing pins the micro-batching contract: concurrent
// requests sharing (graph, target) drain as ONE batch. The drill uses
// pause mode to accumulate the requests deterministically, so the single
// drain that follows resume must coalesce all of them.
func TestEvalCoalescing(t *testing.T) {
	s := newTestServer(t, nil)
	// Materialize the graph (and warm nothing else) so burst requests can
	// go by fingerprint.
	var warm EvalResponse
	if code, rec := post(t, s, "POST", "/v1/eval", evalBody, &warm); code != 200 {
		t.Fatalf("warmup: %d %s", code, rec.Body.String())
	}
	s.SetMode(ModePause)

	const n = 4
	body := fmt.Sprintf(`{
		"graph_fp": %q,
		"target": {"width": 4},
		"schedules": [{"kind": "antidiagonal", "stride": %d}]
	}`, warm.GraphFP, 7) // a stride nothing warmed, so the cache cannot degrade these
	var wg sync.WaitGroup
	resps := make([]EvalResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = post(t, s, "POST", "/v1/eval", body, &resps[i])
		}(i)
	}
	waitUntil(t, func() bool { return s.queue.depth() == n })
	s.SetMode(ModeServe)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if resps[i].BatchSize != n {
			t.Fatalf("request %d: batch size %d, want %d (all coalesced)", i, resps[i].BatchSize, n)
		}
		if resps[i].Costs[0] != resps[0].Costs[0] {
			t.Fatalf("coalesced requests disagree on cost")
		}
		if resps[i].Degraded {
			t.Fatalf("request %d: coalesced answer must not be degraded", i)
		}
	}
	// n identical schedules priced once: the batch deduplicates before
	// evaluating.
	stats := s.cache.SnapshotStats()
	if stats.Misses > 4 { // warmup schedules + one burst schedule
		t.Fatalf("burst should cost one evaluation, cache stats %+v", stats)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, nil)
	var hz healthzResponse
	if code, _ := post(t, s, "GET", "/healthz", "", &hz); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Status != "ok" || hz.Mode != "serve" || hz.QueueCapacity != 8 {
		t.Fatalf("healthz payload %+v", hz)
	}

	if code, rec := post(t, s, "POST", "/v1/eval", evalBody, nil); code != 200 {
		t.Fatalf("eval: %d %s", code, rec.Body.String())
	}
	var snap obs.Snapshot
	if code, _ := post(t, s, "GET", "/v1/metrics", "", &snap); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if snap.Counters["serve.eval.requests"] < 1 || snap.Counters["serve.eval.ok"] < 1 {
		t.Fatalf("metrics missing serve counters: %+v", snap.Counters)
	}
	if _, ok := snap.Gauges["search.evalcache.entries"]; !ok {
		t.Fatalf("metrics missing cache gauges: %+v", snap.Gauges)
	}

	// Marshal-twice determinism over the live endpoint.
	_, rec1 := post(t, s, "GET", "/v1/metrics", "", nil)
	_, rec2 := post(t, s, "GET", "/v1/metrics", "", nil)
	if rec1.Body.String() != rec2.Body.String() {
		t.Fatalf("metrics endpoint is not deterministic between identical scrapes")
	}
}

func TestSlackEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	body := `{
		"recurrence": {"dims": [5, 5], "deps": [[1, 0], [0, 1]]},
		"target": {"width": 4},
		"schedule": {"kind": "antidiagonal"}
	}`
	var resp SlackResponse
	if code, rec := post(t, s, "GET", "/v1/slack", body, &resp); code != 200 {
		t.Fatalf("slack: %d %s", code, rec.Body.String())
	}
	if resp.Summary.Edges == 0 || len(resp.Edges) != resp.Summary.Edges {
		t.Fatalf("slack response %+v with %d edges", resp.Summary, len(resp.Edges))
	}
	if resp.Summary.Negative != 0 {
		t.Fatalf("legal schedule reported %d violated edges", resp.Summary.Negative)
	}
}

func TestAdmissionEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	var got map[string]string
	if code, rec := post(t, s, "POST", "/v1/admission", `{"mode": "shed"}`, &got); code != 200 {
		t.Fatalf("admission: %d %s", code, rec.Body.String())
	}
	if got["mode"] != "shed" || s.Mode() != ModeShed {
		t.Fatalf("mode switch failed: %v, server %v", got, s.Mode())
	}
	if code, _ := post(t, s, "POST", "/v1/admission", `{"mode": "sideways"}`, nil); code != 422 {
		t.Fatalf("bad mode: want 422, got %d", code)
	}

	locked := newTestServer(t, func(c *Config) { c.AdmissionControl = false })
	if code, _ := post(t, locked, "POST", "/v1/admission", `{"mode": "shed"}`, nil); code != 403 {
		t.Fatalf("disabled admission control: want 403, got %d", code)
	}
}

// TestMalformedDeadlineHeader: a garbage X-Deadline-Ms is a client
// error answered 400 — never silently served under the default deadline
// (Sscanf-style prefix parsing once accepted "100abc" as 100).
func TestMalformedDeadlineHeader(t *testing.T) {
	s := newTestServer(t, nil)
	for _, path := range []string{"/v1/eval", "/v1/search"} {
		body := evalBody
		if path == "/v1/search" {
			body = searchBody
		}
		for _, h := range []string{"abc", "100abc", "-5", "0", " 100", "1e3"} {
			req := httptest.NewRequest("POST", path, strings.NewReader(body))
			req.Header.Set("X-Deadline-Ms", h)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != 400 {
				t.Errorf("%s with X-Deadline-Ms %q: want 400, got %d %s", path, h, rec.Code, rec.Body.String())
			}
		}
	}
	// A well-formed header is honored, not rejected.
	req := httptest.NewRequest("POST", "/v1/eval", strings.NewReader(evalBody))
	req.Header.Set("X-Deadline-Ms", "30000")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("well-formed X-Deadline-Ms: want 200, got %d %s", rec.Code, rec.Body.String())
	}
}

// TestDrainFinishesQueuedWork pins the shutdown contract: jobs admitted
// before Drain are answered, not dropped — even jobs parked behind a
// paused queue, because drain outranks pause.
func TestDrainFinishesQueuedWork(t *testing.T) {
	s := newTestServer(t, nil)
	var warm EvalResponse
	if code, _ := post(t, s, "POST", "/v1/eval", evalBody, &warm); code != 200 {
		t.Fatalf("warmup failed")
	}
	s.SetMode(ModePause)

	const n = 3
	body := fmt.Sprintf(`{"graph_fp": %q, "target": {"width": 4}, "schedules": [{"kind": "antidiagonal", "stride": 9}]}`, warm.GraphFP)
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = post(t, s, "POST", "/v1/eval", body, nil)
		}(i)
	}
	waitUntil(t, func() bool { return s.queue.depth() == n })

	ctx, cancel := contextWithTestDeadline(t)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 200 {
			t.Fatalf("queued request %d answered %d during drain, want 200", i, code)
		}
	}

	// After drain: health reports draining with 503, new work is refused.
	if code, _ := post(t, s, "GET", "/healthz", "", nil); code != 503 {
		t.Fatalf("healthz after drain: want 503, got %d", code)
	}
	if code, _ := post(t, s, "POST", "/v1/eval", evalBody, nil); code != 503 {
		t.Fatalf("eval after drain: want 503, got %d", code)
	}

	snap := s.Close()
	if snap.Counters["serve.eval.ok"] < n {
		t.Fatalf("final snapshot lost the drained work: %+v", snap.Counters)
	}
}
