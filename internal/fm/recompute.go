package fm

import (
	"fmt"

	"repro/internal/geom"
)

// Recompute applies the paper's replication rule — "a mapping may compute
// the same element at multiple points in time and/or space - rather than
// storing it or communicating it between those points" — as a graph
// transformation. Given a placement and a predicate marking which nodes
// are cheap enough to recompute, it returns a new function in which every
// consumer at a different place gets its own private copy of each
// recomputable producer (and, transitively, of that producer's
// recomputable ancestors), placed at the consumer. Inputs are never
// duplicated: data can only be recomputed from somewhere.
//
// The returned placement assigns every new node; times are left to a
// scheduling pass (ASAPSchedule) because duplication changes the issue
// structure. Whether the trade wins is exactly what the cost model is
// for: recomputation converts wire energy into compute energy, and at
// 5 nm a 32-bit add costs 1/160th of a single millimetre of wire.
func Recompute(g *Graph, place []geom.Point, recomputable func(NodeID) bool) (*Graph, []geom.Point) {
	if len(place) != g.NumNodes() {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: malformed experiment setup is a caller bug)
		panic(fmt.Sprintf("fm: %d placements for %d nodes", len(place), g.NumNodes()))
	}
	b := NewBuilder(g.Name() + "+recompute")
	var outPlace []geom.Point

	// Inputs keep a single copy at their original place.
	inputCopy := make(map[NodeID]NodeID)
	for _, in := range g.Inputs() {
		id := b.Input(g.Bits(in))
		inputCopy[in] = id
		outPlace = append(outPlace, place[in])
	}

	type key struct {
		n NodeID
		q geom.Point
	}
	memo := make(map[key]NodeID)
	var copyAt func(n NodeID, q geom.Point) NodeID
	copyAt = func(n NodeID, q geom.Point) NodeID {
		if g.IsInput(n) {
			return inputCopy[n]
		}
		k := key{n, q}
		if id, ok := memo[k]; ok {
			return id
		}
		deps := g.Deps(n)
		newDeps := make([]NodeID, len(deps))
		for i, d := range deps {
			if !g.IsInput(d) && recomputable(d) {
				// Private copy of the producer at this consumer's place.
				newDeps[i] = copyAt(d, q)
			} else {
				// Canonical copy at the producer's own place.
				newDeps[i] = copyAt(d, place[d])
			}
		}
		id := b.Op(g.Op(n), g.Bits(n), newDeps...)
		outPlace = append(outPlace, q)
		memo[k] = id
		return id
	}

	// Pull canonical copies of everything a consumer or the interface
	// still needs; recomputable nodes whose every consumer replicated
	// them simply disappear.
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		if g.IsInput(id) || recomputable(id) {
			continue
		}
		copyAt(id, place[id])
	}
	for _, o := range g.Outputs() {
		nid := copyAt(o, place[o])
		b.MarkOutput(nid)
	}
	return b.Build(), outPlace
}
