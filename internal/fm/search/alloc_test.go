//go:build !deltacheck

// The zero-alloc gate for the anneal hot path. Excluded from the
// deltacheck build: the differential engine replays every move through
// the full evaluator and allocates freely by design.

package search

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fm"
	"repro/internal/geom"
)

// newStepChain builds one annealing chain exactly the way AnnealResumable
// does, with the delta engine attached, so ch.step here measures the same
// code the real search runs.
func newStepChain(tb testing.TB, g *fm.Graph, tgt fm.Target) *chain {
	tb.Helper()
	init := fm.ListSchedule(g, tgt)
	place := make([]geom.Point, g.NumNodes())
	for n := range place {
		place[n] = init[n].Place
	}
	src := newChainSource(1, 0, 0)
	ch := &chain{
		rng:   rand.New(src),
		src:   src,
		place: place,
		cool:  math.Pow(1e-3, 1/float64(1<<20)),
	}
	eng, err := newMover(g, tgt)
	if err != nil {
		tb.Fatal(err)
	}
	ch.eng = eng
	ch.curBuf = make(fm.Schedule, g.NumNodes())
	ch.cur = ASAP(g, place, tgt)
	cost, err := eng.Reset(ch.cur)
	if err != nil {
		tb.Fatal(err)
	}
	ch.curCost = cost
	ch.best, ch.bestCost = ch.cur, cost
	ch.temp = math.Max(MinEDP.Value(cost), 1)
	return ch
}

// TestAnnealMoveZeroAlloc is the regression gate behind the delta
// evaluator's headline property: the steady-state move loop — propose,
// price, Metropolis-decide, commit — performs zero heap allocations.
// The best cost is pinned unbeatable so the deliberate new-global-best
// allocation (a fresh snapshot that must outlive cross-chain adoption,
// plus a cache publish) stays cold; that branch fires a handful of times
// per run and is not part of the steady state.
func TestAnnealMoveZeroAlloc(t *testing.T) {
	g := randomGraph(31, 60)
	tgt := fm.DefaultTarget(4, 1)
	ch := newStepChain(t, g, tgt)
	gfp := g.Fingerprint()
	ch.bestCost = fm.Cost{} // objective 0: no candidate can beat it

	for i := 0; i < 100; i++ { // warm up accept and reject paths
		ch.step(g, gfp, tgt, MinEDP, nil)
	}
	if avg := testing.AllocsPerRun(200, func() {
		ch.step(g, gfp, tgt, MinEDP, nil)
	}); avg != 0 {
		t.Fatalf("anneal move allocates %v allocs/op, want 0", avg)
	}
}

// BenchmarkAnnealMove measures delta-priced moves; run with -benchmem to
// see the 0 B/op the test above asserts. BenchmarkAnnealMoveFull is the
// pre-delta path (ASAP rebuild + full Evaluate per move) on the same
// graph and target, so the quotient of the two is the hot-path speedup
// quoted in the README.
func BenchmarkAnnealMove(b *testing.B) {
	g := randomGraph(31, 120)
	tgt := fm.DefaultTarget(4, 1)
	ch := newStepChain(b, g, tgt)
	gfp := g.Fingerprint()
	ch.bestCost = fm.Cost{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.step(g, gfp, tgt, MinEDP, nil)
	}
}

func BenchmarkAnnealMoveFull(b *testing.B) {
	g := randomGraph(31, 120)
	tgt := fm.DefaultTarget(4, 1)
	init := fm.ListSchedule(g, tgt)
	place := make([]geom.Point, g.NumNodes())
	for n := range place {
		place[n] = init[n].Place
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := rng.Intn(g.NumNodes())
		old := place[n]
		place[n] = tgt.Grid.At(rng.Intn(tgt.Grid.Nodes()))
		sched := ASAP(g, place, tgt)
		_ = mustEval(g, sched, tgt)
		place[n] = old
	}
}
