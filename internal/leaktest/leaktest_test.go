package leaktest

import (
	"strings"
	"testing"
	"time"
)

// TestSnapshotSeesSelf proves the parser handles a real dump: the
// snapshot must contain at least the current goroutine, with a positive
// ID and a non-empty stack mentioning this test.
func TestSnapshotSeesSelf(t *testing.T) {
	gs := Snapshot()
	if len(gs) == 0 {
		t.Fatal("Snapshot returned no goroutines")
	}
	found := false
	for _, g := range gs {
		if g.ID <= 0 {
			t.Errorf("goroutine with non-positive ID %d", g.ID)
		}
		if strings.Contains(g.Stack, "TestSnapshotSeesSelf") {
			found = true
		}
	}
	if !found {
		t.Error("no goroutine stack mentions TestSnapshotSeesSelf")
	}
}

// TestInterestingFiltersFramework: on an idle test process, everything
// alive is runtime- or testing-owned except the test goroutine itself,
// and that one is filtered by the tRunner frame. So interesting() over
// a live snapshot must be empty — this is exactly the whole-package
// invariant Main enforces.
func TestInterestingFiltersFramework(t *testing.T) {
	if leaked := retryUntilNone(retryDeadline); len(leaked) > 0 {
		t.Errorf("idle process reports leaks:\n%s", report(leaked))
	}
}

// TestDetectsDeliberateLeak starts a goroutine parked on a channel and
// verifies interesting() reports it, then releases it and verifies the
// report drains. This is the positive case: the harness must actually
// see leaks, not just stay quiet.
func TestDetectsDeliberateLeak(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-release
		close(done)
	}()

	deadline := time.Now().Add(retryDeadline)
	for {
		leaked := interesting(Snapshot())
		if containsFunc(leaked, "TestDetectsDeliberateLeak") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deliberately leaked goroutine never reported")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(release)
	<-done
	if leaked := retryUntilNone(retryDeadline); containsFunc(leaked, "TestDetectsDeliberateLeak") {
		t.Errorf("released goroutine still reported:\n%s", report(leaked))
	}
}

// TestCheckScopesToTest exercises the Check API the way a serve test
// would: goroutines alive before registration are grandfathered, new
// ones must exit by cleanup. The inner subtest starts and stops a
// worker; if Check misfired the subtest itself would fail.
func TestCheckScopesToTest(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		Check(t)
		done := make(chan struct{})
		go func() { close(done) }()
		<-done
	})
}

// TestReportFormat pins the report header so CI log greps stay stable.
func TestReportFormat(t *testing.T) {
	g := Goroutine{ID: 7, State: "chan receive", Stack: "goroutine 7 [chan receive]:\nexample.worker()"}
	got := report([]Goroutine{g})
	if !strings.HasPrefix(got, "leaktest: 1 goroutine(s) leaked:") {
		t.Errorf("report header = %q", strings.SplitN(got, "\n", 2)[0])
	}
	if !strings.Contains(got, "example.worker()") {
		t.Errorf("report omits the leaked stack:\n%s", got)
	}
}

func containsFunc(gs []Goroutine, fn string) bool {
	for _, g := range gs {
		if strings.Contains(g.Stack, fn) {
			return true
		}
	}
	return false
}

func TestMain(m *testing.M) { Main(m) }
