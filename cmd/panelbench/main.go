// Command panelbench runs the full paper-reproduction suite: one
// experiment per quantitative claim in the SPAA'21 panel paper, each
// printing a paper-vs-measured table and a PASS/FAIL verdict. Exit status
// is nonzero if any experiment fails.
//
// Usage:
//
//	panelbench            # run everything
//	panelbench -only E3   # run one experiment
//	panelbench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E3)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	failed := 0
	ran := 0
	for _, e := range all {
		if *only != "" && e.ID != *only {
			continue
		}
		ran++
		r := e.Run()
		if _, err := r.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "panelbench: %v\n", err)
			os.Exit(2)
		}
		if !r.Pass {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "panelbench: no experiment matches %q (try -list)\n", *only)
		os.Exit(2)
	}
	fmt.Printf("\n%d/%d experiments passed\n", ran-failed, ran)
	if failed > 0 {
		os.Exit(1)
	}
}
