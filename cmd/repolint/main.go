// Command repolint runs the repo's custom static analyzers
// (internal/lint) over the module: determinism, nopanic, obsnoop, and
// printban — the compile-time half of the invariants the runtime test
// suites pin dynamically. CI runs it alongside stock vet/staticcheck;
// a non-zero exit means an invariant regressed.
//
// Usage:
//
//	go run ./cmd/repolint ./...          # whole module (from anywhere inside it)
//	go run ./cmd/repolint ./internal/fm  # one package
//	go run ./cmd/repolint -list          # describe the analyzers
//
// repolint is a multichecker over internal/lint/analysis, the repo's
// vendored-minimal mirror of golang.org/x/tools/go/analysis; see that
// package for why x/tools itself is not imported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	modPath, modDir, err := loader.FindModule(".")
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	pkgs, err := expandPatterns(fs.Args(), modPath, modDir)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}

	l := loader.New(loader.Config{ModulePath: modPath, ModuleDir: modDir})
	type diag struct {
		pos      string
		analyzer string
		msg      string
	}
	var diags []diag
	seen := make(map[diag]bool)
	for _, pkgPath := range pkgs {
		pkg, err := l.Load(pkgPath)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				dg := diag{
					pos:      pkg.Fset.Position(d.Pos).String(),
					analyzer: a.Name,
					msg:      d.Message,
				}
				if !seen[dg] {
					seen[dg] = true
					diags = append(diags, dg)
				}
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "repolint: %s on %s: %v\n", a.Name, pkgPath, err)
				return 2
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos != diags[j].pos {
			return diags[i].pos < diags[j].pos
		}
		return diags[i].analyzer < diags[j].analyzer
	})
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s (%s)\n", d.pos, d.msg, d.analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "repolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// expandPatterns turns command-line package patterns into module import
// paths. "./..." (the default) is the whole module; "./dir/..." is a
// subtree; "./dir" is a single package. Patterns are interpreted
// relative to the module root, so repolint behaves the same from any
// directory inside the module.
func expandPatterns(patterns []string, modPath, modDir string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := loader.ModulePackages(modPath, modDir)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := modJoin(modPath, strings.TrimSuffix(pat, "/..."))
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages match %q", pat)
			}
		default:
			p := modJoin(modPath, pat)
			if !hasGoFiles(modDir, modPath, p) {
				return nil, fmt.Errorf("no package at %q", pat)
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// modJoin maps a ./-relative pattern onto the module import path.
func modJoin(modPath, pat string) string {
	pat = path.Clean(strings.TrimPrefix(strings.TrimPrefix(pat, "./"), modPath+"/"))
	if pat == "." || pat == modPath {
		return modPath
	}
	return modPath + "/" + pat
}

func hasGoFiles(modDir, modPath, pkgPath string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modPath), "/")
	ents, err := os.ReadDir(filepath.Join(modDir, filepath.FromSlash(rel)))
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
