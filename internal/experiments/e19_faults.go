package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/replay"
	"repro/internal/stats"
	"repro/internal/tech"
)

// E19 measures graceful degradation: the paper's F&M argument is that
// explicit mappings make costs *predictable*, so E19 asks how far that
// prediction survives a non-ideal machine. Three mappings of the same
// 16x16 DP recurrence (the paper's anti-diagonal, a row-blocked
// placement, and the serial projection) are replayed on the machine
// simulator under a swept deterministic fault rate (node stalls, link
// spikes, dropped-then-retried flits), and the makespan inflation is
// reported next to each mapping's edge-slack profile — the margin the
// schedule has before a CausalityError would fire.
func E19() Result {
	const n, p = 16, 4
	g, dom, err := fm.Recurrence{
		Name: "dp",
		Dims: []int{n, n},
		Deps: [][]int{{1, 1}, {1, 0}, {0, 1}},
		Op:   tech.OpAdd,
		Bits: 32,
	}.Materialize()
	if err != nil {
		return failure("E19", err)
	}
	tgt := fm.DefaultTarget(p, 1)
	tgt.Grid.PitchMM = 0.1
	tgt.MemWordsPerNode = 1 << 20

	stride := fm.MinAntiDiagonalStride(tgt, tech.OpAdd, 32, n, p)
	blockedPlace := make([]geom.Point, g.NumNodes())
	idx := make([]int, 2)
	for nd := range blockedPlace {
		dom.Index(fm.NodeID(nd), idx)
		blockedPlace[nd] = geom.Pt(idx[0]*p/n, 0)
	}
	mappings := []struct {
		name  string
		sched fm.Schedule
	}{
		{"antidiag", fm.AntiDiagonalSchedule(dom, p, stride, geom.Pt(0, 0))},
		{"blocked", fm.ASAPSchedule(g, blockedPlace, tgt)},
		{"serial", fm.SerialSchedule(g, tgt, geom.Pt(0, 0))},
	}

	t := stats.NewTable(
		fmt.Sprintf("E19: fault-rate sweep of the %dx%d DP recurrence on %d processors", n, n, p),
		"mapping", "min slack", "rate", "makespan ps", "inflation", "faults", "retries")
	rates := []float64{0.02, 0.05, 0.10}
	pass := true
	for _, mp := range mappings {
		if err := fm.Check(g, mp.sched, tgt); err != nil {
			return failure("E19", fmt.Errorf("%s mapping illegal: %w", mp.name, err))
		}
		edges, err := fm.SlackAnalysis(g, mp.sched, tgt)
		if err != nil {
			return failure("E19", err)
		}
		minSlack := fm.SummarizeSlack(edges).Min

		base, err := replay.Run(g, mp.sched, tgt, replay.MachineFor(tgt, nil, nil))
		if err != nil {
			return failure("E19", err)
		}
		// Rate 0 must reproduce the fault-free executor bit for bit.
		zeroInj, err := fault.New(fault.Config{Seed: 1, Rate: 0})
		if err != nil {
			return failure("E19", err)
		}
		zero, err := replay.Run(g, mp.sched, tgt, replay.MachineFor(tgt, zeroInj, nil))
		if err != nil {
			return failure("E19", err)
		}
		exact := zero.Makespan == base.Makespan && zero.TotalEnergy == base.TotalEnergy
		pass = pass && exact
		t.AddRow(mp.name, minSlack, "0 (=ideal)", fmt.Sprintf("%.0f", base.Makespan),
			verdict(exact), 0, 0)

		for _, rate := range rates {
			inj, err := fault.New(fault.Config{Seed: 1, Rate: rate})
			if err != nil {
				return failure("E19", err)
			}
			got, err := replay.Run(g, mp.sched, tgt, replay.MachineFor(tgt, inj, nil))
			if err != nil {
				return failure("E19", err)
			}
			infl := got.Makespan / base.Makespan
			fs := got.Faults
			pass = pass && infl >= 1 && fs.Events() > 0
			t.AddRow(mp.name, minSlack, fmt.Sprintf("%.2f", rate),
				fmt.Sprintf("%.0f", got.Makespan), fmt.Sprintf("%.3fx", infl),
				fs.Events(), fs.Retries)
		}
	}
	t.AddNote("same (seed, rate) replays the identical faulted trace; rate 0 is bit-for-bit the ideal run")
	t.AddNote("min slack counts the cycles of injected delay the tightest producer→consumer edge absorbs before causality breaks")

	return Result{
		ID:    "E19",
		Claim: "explicit mappings degrade gracefully and predictably under injected machine faults",
		Table: t,
		Pass:  pass,
		Notes: []string{
			"beyond-paper extension: the paper's cost predictability argument stress-tested on a non-ideal machine",
		},
	}
}
