package experiments

import (
	"fmt"

	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/tech"
)

// E15 reproduces the paper's replication rule as an optimization: "a
// mapping may compute the same element at multiple points in time and/or
// space - rather than storing it or communicating it between those
// points." A chain of L adds produced at one corner and consumed across
// the grid is mapped twice — communicate the result, or recompute the
// chain privately at every consumer — and the crossover is swept in L.
// With 5 nm constants (one 1 mm hop = 160 adds) recomputation wins by
// enormous margins for any plausible chain.
func E15() Result {
	tgt := fm.DefaultTarget(8, 1)
	tgt.MemWordsPerNode = 1 << 20

	t := stats.NewTable("E15: communicate vs recompute (8 consumers across an 8-node row)",
		"chain length L", "communicate fJ", "recompute fJ", "winner", "ratio")
	pass := true
	sawRecomputeWin := false
	for _, l := range []int{2, 8, 32, 128, 1024} {
		g, place := chainFanoutGraph(l, 8, tgt)
		commCost, err := fm.Evaluate(g, fm.ASAPSchedule(g, place, tgt), tgt, fm.EvalOptions{})
		if err != nil {
			return failure("E15", err)
		}
		g2, place2 := fm.Recompute(g, place, func(fm.NodeID) bool { return true })
		reCost, err := fm.Evaluate(g2, fm.ASAPSchedule(g2, place2, tgt), tgt, fm.EvalOptions{})
		if err != nil {
			return failure("E15", err)
		}
		winner := "recompute"
		ratio := commCost.EnergyFJ / reCost.EnergyFJ
		if reCost.EnergyFJ >= commCost.EnergyFJ {
			winner = "communicate"
			ratio = reCost.EnergyFJ / commCost.EnergyFJ
		} else {
			sawRecomputeWin = true
		}
		if reCost.WireEnergy != 0 {
			pass = false
		}
		t.AddRow(l, commCost.EnergyFJ, reCost.EnergyFJ, winner, ratio)
	}
	// The analytic crossover: recomputing an L-add chain for a consumer d
	// hops away beats shipping one word when L*16fJ < wire(32b, d mm).
	perHop := tgt.WireEnergy(32, 1)
	addE := tgt.Tech.OpEnergy(tech.OpAdd, 32)
	t.AddNote("one 1mm hop of a 32-bit word costs %.0f fJ = %.0f adds: the paper's 160x, so recomputation wins until chains reach thousands of ops", perHop, perHop/addE)

	return Result{
		ID:    "E15",
		Claim: "computing the same element at multiple points beats communicating it, far past any intuitive chain length, because wire costs 160x an add per mm",
		Table: t,
		Pass:  pass && sawRecomputeWin,
		Notes: []string{"the transformed function is semantically identical (verified by graph interpretation in the fm tests); only its cost differs"},
	}
}

func chainFanoutGraph(l, consumers int, tgt fm.Target) (*fm.Graph, []geom.Point) {
	b := fm.NewBuilder(fmt.Sprintf("chain%d", l))
	n := b.Op(tech.OpAdd, 32)
	chain := []fm.NodeID{n}
	for i := 1; i < l; i++ {
		n = b.Op(tech.OpAdd, 32, n)
		chain = append(chain, n)
	}
	cons := make([]fm.NodeID, consumers)
	for i := range cons {
		cons[i] = b.Op(tech.OpAdd, 32, n)
		b.MarkOutput(cons[i])
	}
	g := b.Build()
	place := make([]geom.Point, g.NumNodes())
	for _, c := range chain {
		place[c] = geom.Pt(0, 0)
	}
	for i, c := range cons {
		place[c] = tgt.Grid.At(i % tgt.Grid.Nodes())
	}
	return g, place
}
