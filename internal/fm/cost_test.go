package fm

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
	"repro/internal/trace"
)

func TestEvaluateColocatedChain(t *testing.T) {
	b := NewBuilder("chain")
	in := b.Input(32)
	x := b.Op(tech.OpAdd, 32, in)
	y := b.Op(tech.OpAdd, 32, x)
	b.MarkOutput(y)
	g := b.Build()

	tgt := DefaultTarget(4, 4)
	p := geom.Pt(0, 0)
	sched := Schedule{
		{Place: p, Time: 0},
		{Place: p, Time: 0},
		{Place: p, Time: 2},
	}
	c, err := Evaluate(g, sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 4 { // second add finishes at 2+2
		t.Errorf("Cycles = %d, want 4", c.Cycles)
	}
	if c.TimePS != 400 {
		t.Errorf("TimePS = %g", c.TimePS)
	}
	if c.ComputeEnergy != 32 { // two 16 fJ adds
		t.Errorf("ComputeEnergy = %g", c.ComputeEnergy)
	}
	if c.WireEnergy != 0 || c.BitHops != 0 || c.Messages != 0 {
		t.Errorf("co-located chain should move nothing: wire=%g bithops=%d msgs=%d", c.WireEnergy, c.BitHops, c.Messages)
	}
	if c.Ops != 2 || c.PlacesUsed != 1 {
		t.Errorf("ops/places = %d/%d", c.Ops, c.PlacesUsed)
	}
	if c.EnergyFJ != c.ComputeEnergy {
		t.Errorf("EnergyFJ = %g", c.EnergyFJ)
	}
	if c.CommFraction() != 0 {
		t.Errorf("CommFraction = %g", c.CommFraction())
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestEvaluateChargesWirePerDistinctDestination(t *testing.T) {
	// One producer, three consumers: two at the same remote place, one
	// co-located. Wire charged once for the remote place.
	b := NewBuilder("fanout")
	src := b.Op(tech.OpAdd, 32)
	c1 := b.Op(tech.OpAdd, 32, src)
	c2 := b.Op(tech.OpAdd, 32, src)
	c3 := b.Op(tech.OpAdd, 32, src)
	b.MarkOutput(c1)
	b.MarkOutput(c2)
	b.MarkOutput(c3)
	g := b.Build()

	tgt := DefaultTarget(4, 1)
	home, remote := geom.Pt(0, 0), geom.Pt(2, 0)
	sched := Schedule{
		{Place: home, Time: 0},
		{Place: remote, Time: 20}, // 2 finish + 18 transit
		{Place: remote, Time: 21},
		{Place: home, Time: 2},
	}
	c, err := Evaluate(g, sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantWire := tgt.WireEnergy(32, 2)
	if math.Abs(c.WireEnergy-wantWire) > 1e-9 {
		t.Errorf("WireEnergy = %g, want one transfer %g", c.WireEnergy, wantWire)
	}
	if c.BitHops != 64 {
		t.Errorf("BitHops = %d, want 64", c.BitHops)
	}
	if c.Messages != 1 {
		t.Errorf("Messages = %d, want one distinct flow", c.Messages)
	}
}

func TestEvaluateMakespanIncludesTransitToConsumers(t *testing.T) {
	g, in, op := pair(t)
	tgt := DefaultTarget(4, 1)
	sched := make(Schedule, g.NumNodes())
	sched[in] = Assignment{Place: geom.Pt(3, 0), Time: 0}
	sched[op] = Assignment{Place: geom.Pt(0, 0), Time: 27}
	c, err := Evaluate(g, sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// op starts at 27, finishes at 29.
	if c.Cycles != 29 {
		t.Errorf("Cycles = %d, want 29", c.Cycles)
	}
}

func TestEvaluateRejectsIllegal(t *testing.T) {
	g, in, op := pair(t)
	tgt := DefaultTarget(4, 4)
	sched := make(Schedule, g.NumNodes())
	sched[in] = Assignment{Place: geom.Pt(3, 0), Time: 0}
	sched[op] = Assignment{Place: geom.Pt(0, 0), Time: 0}
	if _, err := Evaluate(g, sched, tgt, EvalOptions{}); err == nil {
		t.Fatal("want legality error")
	}
	// SkipCheck prices it anyway (search uses this after one Check).
	if _, err := Evaluate(g, sched, tgt, EvalOptions{SkipCheck: true}); err != nil {
		t.Fatalf("SkipCheck should not re-verify: %v", err)
	}
}

func TestEvaluateChargeInputLoad(t *testing.T) {
	g, in, op := pair(t)
	tgt := DefaultTarget(2, 2)
	off := tgt.OffChipCycles()
	sched := make(Schedule, g.NumNodes())
	sched[in] = Assignment{Place: geom.Pt(0, 0), Time: off}
	sched[op] = Assignment{Place: geom.Pt(0, 0), Time: off}
	c, err := Evaluate(g, sched, tgt, EvalOptions{ChargeInputLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := tgt.Tech.OffChipEnergy(32); c.OffChipEnergy != want {
		t.Errorf("OffChipEnergy = %g, want %g", c.OffChipEnergy, want)
	}
	// Off-chip dominates: the 50,000x claim shows up as a comm fraction
	// near 1 even for this one-add function.
	if c.CommFraction() < 0.99 {
		t.Errorf("CommFraction = %g", c.CommFraction())
	}
	// Input available before the load completes is an error.
	sched[in].Time = off - 1
	sched[op].Time = off - 1
	if _, err := Evaluate(g, sched, tgt, EvalOptions{ChargeInputLoad: true}); err == nil {
		t.Fatal("want error for input before off-chip latency")
	}
}

func TestEvaluatePeakStorage(t *testing.T) {
	// Two values overlap at one node: 2 words peak.
	b := NewBuilder("s")
	v1 := b.Op(tech.OpAdd, 32)
	v2 := b.Op(tech.OpAdd, 32)
	s := b.Op(tech.OpAdd, 32, v1, v2)
	b.MarkOutput(s)
	g := b.Build()
	tgt := DefaultTarget(2, 2)
	p := geom.Pt(0, 0)
	sched := Schedule{{Place: p, Time: 0}, {Place: p, Time: 2}, {Place: p, Time: 4}}
	c, err := Evaluate(g, sched, tgt, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.PeakWordsPerNode < 2 {
		t.Errorf("PeakWordsPerNode = %d, want >= 2", c.PeakWordsPerNode)
	}
}

func TestEvaluateTrace(t *testing.T) {
	g, in, op := pair(t)
	tgt := DefaultTarget(4, 1)
	sched := make(Schedule, g.NumNodes())
	sched[in] = Assignment{Place: geom.Pt(1, 0), Time: 0}
	sched[op] = Assignment{Place: geom.Pt(0, 0), Time: 9}
	tr := trace.New()
	c, err := Evaluate(g, sched, tgt, EvalOptions{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sum := tr.Summarize()
	if sum.CountByKind[trace.KindCompute] != 1 || sum.CountByKind[trace.KindWire] != 1 {
		t.Errorf("trace counts = %v", sum.CountByKind)
	}
	if math.Abs(sum.TotalEnergy-c.EnergyFJ) > 1e-9 {
		t.Errorf("trace energy %g != cost %g", sum.TotalEnergy, c.EnergyFJ)
	}
	if math.Abs(sum.Makespan-c.TimePS) > 1e-9 {
		t.Errorf("trace makespan %g != cost %g", sum.Makespan, c.TimePS)
	}
}

// TestParallelBeatsSerialOnTime is the model's raison d'etre: the same
// function mapped onto more space finishes sooner but pays wire energy,
// while the serial mapping is slow but moves nothing. The grain must be
// coarse enough for compute to beat transit — with tiny adds at 1 mm
// pitch the serial mapping genuinely wins, which is exactly the paper's
// communication-dominance argument — so this test uses multiplies on a
// fine-pitch grid.
func TestParallelBeatsSerialOnTime(t *testing.T) {
	// A reduction tree of 64 leaves.
	b := NewBuilder("reduce")
	level := make([]NodeID, 64)
	for i := range level {
		level[i] = b.Op(tech.OpMul, 32)
	}
	for len(level) > 1 {
		var next []NodeID
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Op(tech.OpMul, 32, level[i], level[i+1]))
		}
		level = next
	}
	b.MarkOutput(level[0])
	g := b.Build()

	tgt := DefaultTarget(16, 1)
	tgt.Grid.PitchMM = 0.25
	serial := SerialSchedule(g, tgt, geom.Pt(0, 0))
	parallel := ListSchedule(g, tgt)

	cs, err := Evaluate(g, serial, tgt, EvalOptions{})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	cp, err := Evaluate(g, parallel, tgt, EvalOptions{})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if cp.Cycles >= cs.Cycles {
		t.Errorf("parallel (%d cycles) should beat serial (%d)", cp.Cycles, cs.Cycles)
	}
	if cs.WireEnergy != 0 {
		t.Errorf("serial mapping should move nothing, wire = %g", cs.WireEnergy)
	}
	if cs.ComputeEnergy != cp.ComputeEnergy {
		t.Errorf("function work is mapping-invariant: %g vs %g", cs.ComputeEnergy, cp.ComputeEnergy)
	}
}
