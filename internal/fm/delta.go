package fm

import (
	"fmt"

	"repro/internal/geom"
)

// DeltaEvaluator prices single-node placement moves incrementally: the
// anneal hot path in internal/fm/search relocates one node per step, and
// re-pricing the whole mapping from scratch (ASAPSchedule + Evaluate)
// allocates schedules, maps, and event lists on every move. The delta
// evaluator keeps the full pricing state of the *committed* mapping in
// flat, reusable arrays and answers "what would this mapping cost with
// node n at place p, re-timed ASAP?" without allocating.
//
// Bit-exactness contract: Propose returns a Cost bitwise identical to
//
//	sched := ASAPSchedule(g, placeWithMove, tgt)
//	cost, _ := Evaluate(g, sched, tgt, EvalOptions{SkipCheck: true})
//
// (with opts.ChargeInputLoad false, the search configuration). Exact
// integer fields are exact under any accumulation order; the float wire
// total is reproduced bit-for-bit because Evaluate and the delta path
// share the canonical producer-major accumulation of flows.go: moving
// node n invalidates only the flow partials of producers incident to n
// (wire cost depends on placement alone), so Propose recomputes those
// few partials and re-adds ALL partials in producer-ID order — the same
// float operation sequence Evaluate runs. internal/fm/deltacheck replays
// every move against the full evaluator to pin this contract.
//
// What a move invalidates, and why the bound holds:
//
//   - Flow partials: wire energy, bit-hops, messages, and max transit of
//     a producer depend only on its place and its consumers' places, so
//     a move of n touches exactly {n} ∪ deps(n).
//   - Times: start times downstream of n can shift arbitrarily far, so
//     Propose re-derives the full ASAP timing in one allocation-free
//     O(nodes + edges) pass (epoch-stamped issue calendar instead of the
//     map ASAPSchedule uses), fusing the last-use computation (legal
//     because dependencies always have lower IDs).
//   - Storage peaks: a place's resident-words profile changes only if
//     its membership changed (the moved node's old and new places) or
//     one of its nodes' (born, free) interval changed; Propose re-sweeps
//     only those dirty places, walking intrusive per-place lists kept in
//     node-ID order. Same-place ASAP starts strictly increase with ID,
//     so born (finish) times arrive nearly sorted and an insertion pass
//     orders them at near-linear cost; free times are unordered and go
//     through a binary min-heap, merged with the borns in one sweep.
//   - Makespan, places used, totals: O(nodes + grid) scans over flat
//     arrays, no allocation.
//
// A DeltaEvaluator is a two-phase state machine: Reset prices a full
// schedule and makes it current; Propose prices one candidate move into
// scratch state without touching the committed mapping (call it freely
// for rejected moves); Commit promotes the last proposal to committed.
// Not safe for concurrent use — each annealing chain owns one.
type DeltaEvaluator struct {
	g   *Graph
	tgt Target

	// Immutable per-graph precompute.
	cons    []NodeID // flattened consumer lists (flows.go)
	consOff []int32
	opCyc   []int64 // OpCycles per node; 0 for inputs so fin = tme + opCyc
	words   []int   // storage words per node's value
	isOut   []bool  // declared output nodes
	hopCyc  int64   // Target.HopCycles()
	compE   float64 // compute energy: placement-invariant, Evaluate's order
	ops     int
	numP    int // grid points

	attached bool // Reset has run
	proposed bool // a Propose is pending Commit

	// Committed mapping state.
	place      []geom.Point
	placeID    []int32 // grid ID of place, per node
	tme        []int64 // start time per node
	fin        []int64 // value-exists time per node (finishTime)
	lastUse    []int64 // last consumer start per node; -1 if never consumed
	wireOut    []float64
	bhOut      []int64
	msgOut     []int64
	maxT       []int64 // largest transit among charged flows per producer
	schedEnd   int64   // Schedule.Makespan(): max start + 1
	placesUsed int
	cost       Cost

	// Intrusive per-place membership lists (committed placement), kept
	// in ascending node-ID order: candPeak relies on same-place start
	// times increasing with ID to get nearly-sorted born events.
	head       []int32 // per grid ID; -1 empty
	next, prev []int32 // per node
	placeCnt   []int32 // per grid ID
	placePeak  []int   // per grid ID; committed storage peak

	// Epoch-stamped scratch: a stamp equal to epoch means "written by the
	// current Propose"; bumping the epoch invalidates everything in O(1).
	epoch      uint32
	issueStamp []uint32 // per grid ID: ASAP issue calendar
	issueVal   []int64
	affStamp   []uint32 // per node: producer flows recomputed this epoch
	affIdx     []int32
	dirtyStamp []uint32 // per grid ID: storage peak recomputed this epoch
	dirtyIdx   []int32

	// Proposal scratch (valid while proposed, epoch-guarded).
	nTme, nFin []int64
	nLastUse   []int64
	affList    []NodeID
	affWire    []float64
	affBH      []int64
	affMsg     []int64
	affMaxT    []int64
	dirtyList  []int32
	nPeak      []int
	evScratch  []storageEvent
	bornT      []int64 // candPeak merge scratch: born times/weights, sorted
	bornW      []int64
	freeT      []int64 // free times/weights, min-heaped
	freeW      []int64
	dstScratch []geom.Point
	pN         NodeID
	pB         geom.Point
	pGidA      int32
	pGidB      int32
	nSchedEnd  int64
	nCost      Cost
}

// NewDeltaEvaluator builds a delta evaluator for g on tgt. All scratch is
// allocated here, sized by the graph and grid, so Reset, Propose, Commit,
// and Snapshot (into a large-enough buffer) never allocate afterwards.
func NewDeltaEvaluator(g *Graph, tgt Target) (*DeltaEvaluator, error) {
	if g == nil {
		return nil, fmt.Errorf("fm: delta evaluator needs a graph")
	}
	tgt = tgt.withDefaults()
	if err := tgt.Validate(); err != nil {
		return nil, err
	}
	numP := tgt.Grid.Nodes()
	if numP <= 0 {
		return nil, fmt.Errorf("fm: delta evaluator needs a target grid, got %dx%d", tgt.Grid.Width, tgt.Grid.Height)
	}
	n := g.NumNodes()
	d := &DeltaEvaluator{g: g, tgt: tgt, hopCyc: tgt.HopCycles(), numP: numP}
	d.cons, d.consOff = consumerLists(g)

	d.opCyc = make([]int64, n)
	d.words = make([]int, n)
	d.isOut = make([]bool, n)
	maxFanin := 0
	for i := 0; i < n; i++ {
		id := NodeID(i)
		d.words[i] = tgt.Words(g.Bits(id))
		if deg := len(g.Deps(id)); deg > maxFanin {
			maxFanin = deg
		}
		if g.IsInput(id) {
			continue
		}
		d.opCyc[i] = tgt.OpCycles(g.Op(id), g.Bits(id))
		// Same node order as Evaluate's compute-energy loop; the sum is
		// placement-invariant, so it is computed exactly once.
		d.compE += tgt.Tech.OpEnergy(g.Op(id), g.Bits(id))
		d.ops++
	}
	for _, o := range g.Outputs() {
		d.isOut[o] = true
	}

	d.place = make([]geom.Point, n)
	d.placeID = make([]int32, n)
	d.tme = make([]int64, n)
	d.fin = make([]int64, n)
	d.lastUse = make([]int64, n)
	d.wireOut = make([]float64, n)
	d.bhOut = make([]int64, n)
	d.msgOut = make([]int64, n)
	d.maxT = make([]int64, n)

	d.head = make([]int32, numP)
	d.next = make([]int32, n)
	d.prev = make([]int32, n)
	d.placeCnt = make([]int32, numP)
	d.placePeak = make([]int, numP)

	d.issueStamp = make([]uint32, numP)
	d.issueVal = make([]int64, numP)
	d.affStamp = make([]uint32, n)
	d.affIdx = make([]int32, n)
	d.dirtyStamp = make([]uint32, numP)
	d.dirtyIdx = make([]int32, numP)

	d.nTme = make([]int64, n)
	d.nFin = make([]int64, n)
	d.nLastUse = make([]int64, n)
	d.affList = make([]NodeID, 0, maxFanin+1)
	d.affWire = make([]float64, maxFanin+1)
	d.affBH = make([]int64, maxFanin+1)
	d.affMsg = make([]int64, maxFanin+1)
	d.affMaxT = make([]int64, maxFanin+1)
	d.dirtyList = make([]int32, 0, numP)
	d.nPeak = make([]int, numP)
	d.evScratch = make([]storageEvent, 0, 2*n)
	d.bornT = make([]int64, 0, n)
	d.bornW = make([]int64, 0, n)
	d.freeT = make([]int64, 0, n)
	d.freeW = make([]int64, 0, n)
	d.dstScratch = make([]geom.Point, 0, maxFanout(d.consOff))
	return d, nil
}

// Reset prices sched in full and makes it the committed mapping. The
// returned Cost is bitwise identical to Evaluate(g, sched, tgt,
// EvalOptions{SkipCheck: true}). Every assignment must be on the target
// grid (Evaluate with SkipCheck tolerates off-grid places, but the delta
// evaluator indexes its calendars by grid ID); legality beyond that is
// not checked, matching the search hot path.
func (d *DeltaEvaluator) Reset(sched Schedule) (Cost, error) {
	g, n := d.g, d.g.NumNodes()
	if err := sched.validateLen(g); err != nil {
		return Cost{}, err
	}
	for i := range sched {
		if !d.tgt.Grid.Contains(sched[i].Place) {
			return Cost{}, &OffGridError{Node: NodeID(i), Place: sched[i].Place}
		}
	}
	d.proposed = false

	for q := 0; q < d.numP; q++ {
		d.head[q] = -1
		d.placeCnt[q] = 0
	}
	for i := 0; i < n; i++ {
		a := sched[i]
		gid := int32(d.tgt.Grid.ID(a.Place))
		d.place[i] = a.Place
		d.placeID[i] = gid
		d.tme[i] = a.Time
		d.fin[i] = a.Time + d.opCyc[i]
		d.placeCnt[gid]++
	}
	// Link in descending ID order so the sorted insert hits the head
	// every time and the lists come out ascending in O(n).
	for i := n - 1; i >= 0; i-- {
		d.link(i, d.placeID[i])
	}
	d.placesUsed = 0
	for q := 0; q < d.numP; q++ {
		if d.placeCnt[q] > 0 {
			d.placesUsed++
		}
	}

	for i := 0; i < n; i++ {
		d.lastUse[i] = -1
	}
	var end int64
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if !g.IsInput(id) {
			for _, p := range g.Deps(id) {
				if d.tme[i] > d.lastUse[p] {
					d.lastUse[p] = d.tme[i]
				}
			}
		}
		if d.tme[i]+1 > end {
			end = d.tme[i] + 1
		}
	}
	d.schedEnd = end

	for p := 0; p < n; p++ {
		clist := d.cons[d.consOff[p]:d.consOff[p+1]]
		if len(clist) == 0 {
			d.wireOut[p], d.bhOut[p], d.msgOut[p], d.maxT[p] = 0, 0, 0, 0
			continue
		}
		d.wireOut[p], d.bhOut[p], d.msgOut[p], d.maxT[p] =
			producerFlows(g, d.tgt, NodeID(p), clist, d.placeAt, d.dstScratch[:0])
	}

	var wire float64
	var bh, msgs int64
	var makespan int64
	for p := 0; p < n; p++ {
		if f := d.fin[p]; f > makespan {
			makespan = f
		}
		if d.consOff[p+1] == d.consOff[p] {
			continue
		}
		wire += d.wireOut[p]
		bh += d.bhOut[p]
		msgs += d.msgOut[p]
		if d.maxT[p] > 0 {
			if arrive := d.fin[p] + d.maxT[p]; arrive > makespan {
				makespan = arrive
			}
		}
	}

	peak := 0
	for q := int32(0); int(q) < d.numP; q++ {
		if d.placeCnt[q] == 0 {
			d.placePeak[q] = 0
			continue
		}
		evs := d.evScratch[:0]
		for i := d.head[q]; i >= 0; i = d.next[i] {
			evs = d.nodeEvents(evs, int(i), d.fin, d.lastUse, d.schedEnd)
		}
		pk := sweepEvents(evs)
		d.placePeak[q] = pk
		if pk > peak {
			peak = pk
		}
	}

	d.cost = d.assemble(makespan, wire, bh, msgs, peak, d.placesUsed)
	d.attached = true
	return d.cost, nil
}

// placeAt is the committed-placement lookup handed to producerFlows.
func (d *DeltaEvaluator) placeAt(n NodeID) geom.Point { return d.place[n] }

// Propose prices the mapping obtained by moving node n to place to and
// re-deriving all start times ASAP (the annealer's move semantics:
// ASAPSchedule over the perturbed placement). Committed state is not
// touched — a rejected move needs no cleanup; call Commit to adopt the
// proposal. The returned Cost is bitwise identical to evaluating that
// re-timed schedule in full.
//
// This is the anneal inner loop's costliest call; TestAnnealMoveZeroAlloc
// pins one run at zero allocations and hotalloc pins every reachable
// call site statically.
//
//lint:hotpath
func (d *DeltaEvaluator) Propose(n NodeID, to geom.Point) Cost {
	g, numN := d.g, d.g.NumNodes()
	if !d.attached {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: Propose before Reset is a caller bug)
		panic("fm: DeltaEvaluator.Propose before Reset")
	}
	if int(n) < 0 || int(n) >= numN {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: node out of range is a caller bug)
		//lint:allow alloc(unreachable in a correct run: the Sprintf only feeds a caller-bug panic)
		panic(fmt.Sprintf("fm: DeltaEvaluator.Propose of node %d in a %d-node graph", n, numN))
	}
	if !d.tgt.Grid.Contains(to) {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: off-grid move is a caller bug)
		//lint:allow alloc(unreachable in a correct run: the Sprintf only feeds a caller-bug panic)
		panic(fmt.Sprintf("fm: DeltaEvaluator.Propose moves node %d off-grid to %v", n, to))
	}
	d.bumpEpoch()
	d.pN, d.pB = n, to
	d.pGidA = d.placeID[n]
	d.pGidB = int32(d.tgt.Grid.ID(to))
	moved := d.pGidA != d.pGidB

	// 1. Producers whose flow partials a move invalidates: n itself and
	// its dependencies (their consumer n changed place). Placement-only,
	// so an unmoved placement invalidates nothing.
	d.affList = d.affList[:0]
	if moved {
		d.markAffected(n)
		for _, p := range g.Deps(n) {
			d.markAffected(p)
		}
		for k, p := range d.affList {
			clist := d.cons[d.consOff[p]:d.consOff[p+1]]
			d.affWire[k], d.affBH[k], d.affMsg[k], d.affMaxT[k] =
				//lint:allow alloc(the closure never escapes producerFlows, so escape analysis keeps it on the stack; TestAnnealMoveZeroAlloc pins this at runtime)
				producerFlows(g, d.tgt, p, clist, func(x NodeID) geom.Point {
					if x == n {
						return to
					}
					return d.place[x]
				}, d.dstScratch[:0])
		}
	}

	// 2. One ASAP pass over the candidate placement: start times, finish
	// times, last uses, and both makespans, fused. Dependencies always
	// have lower IDs, so nFin and nLastUse of every dep are final when
	// read. The issue calendar is the epoch-stamped equivalent of
	// ASAPSchedule's nextIssue map.
	var makespan, maxStart1 int64
	for i := 0; i < numN; i++ {
		id := NodeID(i)
		pl := d.place[i]
		gid := d.placeID[i]
		if id == n {
			pl, gid = to, d.pGidB
		}
		d.nLastUse[i] = -1
		var start int64
		if g.IsInput(id) {
			d.nTme[i], d.nFin[i] = 0, 0
		} else {
			if d.issueStamp[gid] == d.epoch {
				start = d.issueVal[gid]
			}
			for _, p := range g.Deps(id) {
				pp := d.place[p]
				if p == n {
					pp = to
				}
				ready := d.nFin[p]
				if hops := pp.Manhattan(pl); hops > 0 {
					ready += int64(hops) * d.hopCyc
				}
				if ready > start {
					start = ready
				}
			}
			d.nTme[i] = start
			d.nFin[i] = start + d.opCyc[i]
			d.issueStamp[gid] = d.epoch
			d.issueVal[gid] = start + 1
			for _, p := range g.Deps(id) {
				if start > d.nLastUse[p] {
					d.nLastUse[p] = start
				}
			}
		}
		if start+1 > maxStart1 {
			maxStart1 = start + 1
		}
		f := d.nFin[i]
		if f > makespan {
			makespan = f
		}
		mt := d.maxT[i]
		if d.affStamp[i] == d.epoch {
			mt = d.affMaxT[d.affIdx[i]]
		}
		if mt > 0 {
			if arrive := f + mt; arrive > makespan {
				makespan = arrive
			}
		}
	}
	d.nSchedEnd = maxStart1

	// 3. Totals: integer fields are order-exact; the float wire total
	// re-adds every producer partial in ID order — the canonical sequence
	// of flows.go — substituting the recomputed partials of step 1.
	var wire float64
	var bh, msgs int64
	for p := 0; p < numN; p++ {
		if d.consOff[p+1] == d.consOff[p] {
			continue
		}
		if d.affStamp[p] == d.epoch {
			k := d.affIdx[p]
			wire += d.affWire[k]
			bh += d.affBH[k]
			msgs += d.affMsg[k]
		} else {
			wire += d.wireOut[p]
			bh += d.bhOut[p]
			msgs += d.msgOut[p]
		}
	}

	// 4. Dirty places: membership changed (old and new place of n), a
	// member's (born, free) interval changed (its start or last-use time
	// moved), or — when the schedule end moved — any place holding an
	// output, whose free time is pinned to the end.
	d.dirtyList = d.dirtyList[:0]
	d.markDirty(d.pGidA)
	d.markDirty(d.pGidB)
	for i := 0; i < numN; i++ {
		if d.nTme[i] != d.tme[i] || d.nLastUse[i] != d.lastUse[i] {
			gid := d.placeID[i]
			if NodeID(i) == n {
				gid = d.pGidB
			}
			d.markDirty(gid)
		}
	}
	if d.nSchedEnd != d.schedEnd {
		for _, o := range g.Outputs() {
			gid := d.placeID[o]
			if o == n {
				gid = d.pGidB
			}
			d.markDirty(gid)
		}
	}
	for k, q := range d.dirtyList {
		d.nPeak[k] = d.candPeak(q, moved)
	}
	peak := 0
	for q := 0; q < d.numP; q++ {
		pk := d.placePeak[q]
		if d.dirtyStamp[q] == d.epoch {
			pk = d.nPeak[d.dirtyIdx[q]]
		}
		if pk > peak {
			peak = pk
		}
	}

	pu := d.placesUsed
	if moved {
		if d.placeCnt[d.pGidA] == 1 {
			pu--
		}
		if d.placeCnt[d.pGidB] == 0 {
			pu++
		}
	}

	d.nCost = d.assemble(makespan, wire, bh, msgs, peak, pu)
	d.proposed = true
	return d.nCost
}

// Commit promotes the last proposal to the committed mapping: O(dirty)
// writebacks plus pointer swaps of the time arrays.
func (d *DeltaEvaluator) Commit() {
	if !d.proposed {
		//lint:allow panic(argument-contract guard, like stdlib slice bounds: Commit without a pending Propose is a caller bug)
		panic("fm: DeltaEvaluator.Commit without a pending Propose")
	}
	for k, p := range d.affList {
		d.wireOut[p] = d.affWire[k]
		d.bhOut[p] = d.affBH[k]
		d.msgOut[p] = d.affMsg[k]
		d.maxT[p] = d.affMaxT[k]
	}
	if d.pGidA != d.pGidB {
		d.unlink(int(d.pN), d.pGidA)
		d.link(int(d.pN), d.pGidB)
		d.placeCnt[d.pGidA]--
		d.placeCnt[d.pGidB]++
		d.place[d.pN] = d.pB
		d.placeID[d.pN] = d.pGidB
	}
	d.tme, d.nTme = d.nTme, d.tme
	d.fin, d.nFin = d.nFin, d.fin
	d.lastUse, d.nLastUse = d.nLastUse, d.lastUse
	for k, q := range d.dirtyList {
		d.placePeak[q] = d.nPeak[k]
	}
	d.schedEnd = d.nSchedEnd
	d.placesUsed = d.nCost.PlacesUsed
	d.cost = d.nCost
	d.proposed = false
}

// Cost returns the committed mapping's cost.
func (d *DeltaEvaluator) Cost() Cost { return d.cost }

// Snapshot writes the committed mapping into dst (reusing its storage
// when large enough — pass a preallocated buffer for an allocation-free
// copy) and returns it.
func (d *DeltaEvaluator) Snapshot(dst Schedule) Schedule {
	n := d.g.NumNodes()
	if cap(dst) < n {
		dst = make(Schedule, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = Assignment{Place: d.place[i], Time: d.tme[i]}
	}
	return dst
}

// assemble builds a Cost with the exact field expressions Evaluate uses,
// so the float derivations (TimePS, EnergyFJ) run the same operations.
func (d *DeltaEvaluator) assemble(makespan int64, wire float64, bh, msgs int64, peak, placesUsed int) Cost {
	var c Cost
	c.ComputeEnergy = d.compE
	c.WireEnergy = wire
	c.BitHops = bh
	c.Messages = msgs
	c.Ops = d.ops
	c.Cycles = makespan
	c.TimePS = float64(makespan) * d.tgt.CyclePS
	c.EnergyFJ = c.ComputeEnergy + c.WireEnergy + c.OffChipEnergy
	c.PeakWordsPerNode = peak
	c.PlacesUsed = placesUsed
	return c
}

func (d *DeltaEvaluator) bumpEpoch() {
	d.epoch++
	if d.epoch == 0 {
		for i := range d.issueStamp {
			d.issueStamp[i] = 0
		}
		for i := range d.affStamp {
			d.affStamp[i] = 0
		}
		for i := range d.dirtyStamp {
			d.dirtyStamp[i] = 0
		}
		d.epoch = 1
	}
}

//lint:allow alloc(affList is Reset-preallocated to capacity numNodes, so the append never grows)
func (d *DeltaEvaluator) markAffected(p NodeID) {
	if d.affStamp[p] == d.epoch {
		return
	}
	d.affStamp[p] = d.epoch
	d.affIdx[p] = int32(len(d.affList))
	d.affList = append(d.affList, p)
}

//lint:allow alloc(dirtyList is Reset-preallocated to capacity numPlaces, so the append never grows)
func (d *DeltaEvaluator) markDirty(gid int32) {
	if d.dirtyStamp[gid] == d.epoch {
		return
	}
	d.dirtyStamp[gid] = d.epoch
	d.dirtyIdx[gid] = int32(len(d.dirtyList))
	d.dirtyList = append(d.dirtyList, gid)
}

// candPeak computes the candidate storage peak of one place: committed
// membership adjusted for the move, candidate (born, free) intervals.
// It is the hottest delta operation, so instead of sorting all events
// it exploits structure: members iterate in ID order, same-place starts
// strictly increase with ID, and finish adds only a small op latency —
// so born times arrive nearly sorted and an insertion pass orders them
// at near-linear cost. Free times (last consumer starts) carry no such
// order and go through a binary min-heap. The merge applies frees
// before borns at equal instants, exactly sweepEvents' comparator; the
// peak is an integer prefix-sum maximum, identical under any tie order
// within an instant, so the result matches the full sort bit for bit.
func (d *DeltaEvaluator) candPeak(q int32, moved bool) int {
	bT, bW := d.bornT[:0], d.bornW[:0]
	fT, fW := d.freeT[:0], d.freeW[:0]
	for i := d.head[q]; i >= 0; i = d.next[i] {
		if moved && NodeID(i) == d.pN {
			continue
		}
		bT, bW, fT, fW = d.pushInterval(bT, bW, fT, fW, int(i))
	}
	if moved && q == d.pGidB {
		bT, bW, fT, fW = d.pushInterval(bT, bW, fT, fW, int(d.pN))
	}
	heapifyMin(fT, fW)
	var cur, peak int64
	nf := len(fT)
	for k := 0; k < len(bT); k++ {
		for nf > 0 && fT[0] <= bT[k] {
			cur -= fW[0]
			nf = popMin(fT, fW, nf)
		}
		cur += bW[k]
		if cur > peak {
			peak = cur
		}
	}
	return int(peak)
}

// pushInterval appends node i's candidate storage interval: the born
// time insertion-sorted into (bT, bW), the free time pushed onto the
// pending lists heapified later. Free-time semantics mirror
// storageEvents: outputs live to the schedule end; an unconsumed value
// still occupies its production cycle; the -w event lands at free+1.
//
//lint:allow alloc(all four slices are Reset-preallocated scratch with capacity numNodes+1, so the appends never grow)
func (d *DeltaEvaluator) pushInterval(bT, bW, fT, fW []int64, i int) ([]int64, []int64, []int64, []int64) {
	free := d.nLastUse[i]
	if d.isOut[i] {
		free = d.nSchedEnd
	}
	if free < 0 {
		free = d.nFin[i]
	}
	w := int64(d.words[i])
	t := d.nFin[i]
	bT, bW = append(bT, 0), append(bW, 0)
	j := len(bT) - 1
	for j > 0 && bT[j-1] > t {
		bT[j], bW[j] = bT[j-1], bW[j-1]
		j--
	}
	bT[j], bW[j] = t, w
	return bT, bW, append(fT, free+1), append(fW, w)
}

// heapifyMin builds a binary min-heap on t, carrying w alongside.
func heapifyMin(t, w []int64) {
	for i := len(t)/2 - 1; i >= 0; i-- {
		siftMin(t, w, i, len(t))
	}
}

// popMin removes the root of an n-element min-heap and returns n-1.
func popMin(t, w []int64, n int) int {
	n--
	t[0], t[n] = t[n], t[0]
	w[0], w[n] = w[n], w[0]
	siftMin(t, w, 0, n)
	return n
}

func siftMin(t, w []int64, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && t[c+1] < t[c] {
			c++
		}
		if t[root] <= t[c] {
			return
		}
		t[root], t[c] = t[c], t[root]
		w[root], w[c] = w[c], w[root]
		root = c
	}
}

// nodeEvents appends node i's alloc/free event pair, mirroring
// storageEvents: the value is born at its finish time and freed after
// its last consumer starts; outputs live to the schedule end; a value
// nobody consumes still occupies its production cycle.
func (d *DeltaEvaluator) nodeEvents(evs []storageEvent, i int, fin, lastUse []int64, end int64) []storageEvent {
	free := lastUse[i]
	if d.isOut[i] {
		free = end
	}
	if free < 0 {
		free = fin[i]
	}
	w := d.words[i]
	return append(evs, storageEvent{time: fin[i], delta: w}, storageEvent{time: free + 1, delta: -w})
}

// sweepEvents is sweepPeak minus the peak-time report, with an in-place
// heapsort instead of sort.Slice so the hot path stays allocation-free.
// The comparator matches sweepPeak: time order, frees before allocations
// at the same instant. (Heapsort is unstable, but events equal under the
// comparator are interchangeable in a prefix-sum maximum.)
func sweepEvents(evs []storageEvent) int {
	heapSortEvents(evs)
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

func eventLess(a, b storageEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.delta < b.delta
}

func heapSortEvents(evs []storageEvent) {
	n := len(evs)
	for i := n/2 - 1; i >= 0; i-- {
		siftEvents(evs, i, n)
	}
	for i := n - 1; i > 0; i-- {
		evs[0], evs[i] = evs[i], evs[0]
		siftEvents(evs, 0, i)
	}
}

func siftEvents(evs []storageEvent, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && eventLess(evs[c], evs[c+1]) {
			c++
		}
		if !eventLess(evs[root], evs[c]) {
			return
		}
		evs[root], evs[c] = evs[c], evs[root]
		root = c
	}
}

// link inserts node i into place gid's membership list at its ID-sorted
// position. Reset links in descending ID order (O(1) head inserts);
// Commit relinks one node, walking at most the place's occupancy.
func (d *DeltaEvaluator) link(i int, gid int32) {
	prev, cur := int32(-1), d.head[gid]
	for cur >= 0 && cur < int32(i) {
		prev, cur = cur, d.next[cur]
	}
	d.next[i] = cur
	d.prev[i] = prev
	if cur >= 0 {
		d.prev[cur] = int32(i)
	}
	if prev >= 0 {
		d.next[prev] = int32(i)
	} else {
		d.head[gid] = int32(i)
	}
}

func (d *DeltaEvaluator) unlink(i int, gid int32) {
	p, nx := d.prev[i], d.next[i]
	if p >= 0 {
		d.next[p] = nx
	} else {
		d.head[gid] = nx
	}
	if nx >= 0 {
		d.prev[nx] = p
	}
}
