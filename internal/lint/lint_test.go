package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
)

// TestAnalyzers drives every analyzer over its fixtures: positive hits
// (want comments), negatives (clean code and out-of-scope packages),
// and the //lint:allow escape hatch, all encoded in the fixtures under
// testdata/src.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *analysis.Analyzer
		pkgs     []string
	}{
		// Positive + escape-hatch fixtures at in-scope import paths.
		{"determinism/critical", lint.Determinism, []string{"repro/internal/fm/search"}},
		{"nopanic/internal", lint.NoPanic, []string{"repro/internal/nopanictest"}},
		{"obsnoop", lint.ObsNoop, []string{"obsnooptest"}},
		{"printban/internal", lint.PrintBan, []string{"repro/internal/printtest"}},
		// v2 analyzers: hotalloc follows calls into the dep fixture
		// package (wants live in both), ctxflow and lockcheck cover
		// method values, embedded mutexes, and the allow escape.
		{"hotalloc", lint.Hotalloc, []string{"hotalloctest"}},
		{"ctxflow/request-path", lint.Ctxflow, []string{"repro/internal/serve/ctxtest"}},
		{"lockcheck", lint.Lockcheck, []string{"repro/internal/locktest"}},
		// Negatives: the same shapes at out-of-scope paths must be silent
		// (the fixture has no want comments, so any diagnostic fails).
		{"determinism/noncritical", lint.Determinism, []string{"a/notcritical"}},
		{"nopanic/external", lint.NoPanic, []string{"a/notcritical"}},
		{"printban/external", lint.PrintBan, []string{"a/notcritical"}},
		{"ctxflow/out-of-scope", lint.Ctxflow, []string{"ctxouttest"}},
		{"hotalloc/unannotated", lint.Hotalloc, []string{"a/notcritical"}},
		{"lockcheck/out-of-scope", lint.Lockcheck, []string{"ctxouttest"}},
		// The protected packages themselves may touch their own internals.
		{"obsnoop/self", lint.ObsNoop, []string{"repro/internal/obs"}},
		{"obsnoop/tracing-self", lint.ObsNoop, []string{"repro/internal/obs/tracing"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", tc.analyzer, tc.pkgs...)
		})
	}
}

// TestAll pins the analyzer roster: names are unique, sorted, and every
// Doc names its escape hatch so a finding is always actionable.
func TestAll(t *testing.T) {
	all := lint.All()
	if len(all) != 7 {
		t.Fatalf("got %d analyzers, want 7", len(all))
	}
	for i, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %d incomplete: %+v", i, a)
		}
		if i > 0 && all[i-1].Name >= a.Name {
			t.Errorf("analyzers out of order: %s before %s", all[i-1].Name, a.Name)
		}
		if !strings.Contains(a.Doc, "//lint:allow") {
			t.Errorf("%s: Doc does not document the escape hatch", a.Name)
		}
	}
}
