package experiments

import (
	"repro/internal/fm"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/workspan"
)

// E12 reproduces the two model extensions the panelists gesture at:
// Blelloch's "reasonably simple extensions that support accounting for
// locality, as well as asymmetry in read-write costs", and Vishkin's
// "many-core computing can offer improvement by 4-5 orders of magnitude
// over single cores" headroom figure, demonstrated as an embarrassingly
// parallel function mapped across a 100x100 grid versus the serial
// projection.
func E12() Result {
	t := stats.NewTable("E12: model extensions",
		"experiment", "quantity", "value", "expectation", "within")
	pass := true

	// Read/write asymmetry: the blocked scan writes each output once;
	// Kogge-Stone rewrites the array every round. The absolute penalty
	// grows linearly with the write/read cost ratio omega.
	const n = 1 << 16
	gap1 := workspan.KoggeStoneMemCost(n, workspan.Symmetric()) -
		workspan.ScanMemCost(n, 1024, workspan.Symmetric())
	gap8 := workspan.KoggeStoneMemCost(n, workspan.Asymmetric(8)) -
		workspan.ScanMemCost(n, 1024, workspan.Asymmetric(8))
	okAsym := gap8 > 2*gap1
	pass = pass && okAsym
	t.AddRow("write asymmetry (omega=8)", "extra cost of write-heavy scan", gap8/gap1,
		"grows ~linearly with omega", verdict(okAsym))

	// Many-core headroom: 10,000 independent ops on a 100x100 grid.
	const k = 10000
	b := fm.NewBuilder("headroom")
	for i := 0; i < k; i++ {
		b.MarkOutput(b.Op(tech.OpMul, 32))
	}
	g := b.Build()
	// The serial projection keeps all 10^4 results live at one node, so
	// its tile must hold them (the parallel mapping needs one word each).
	tgt := fm.DefaultTarget(100, 100)
	tgt.MemWordsPerNode = 16384
	sched := fm.FromFunc(g, func(nd fm.NodeID) fm.Assignment {
		return fm.Assignment{Place: tgt.Grid.At(int(nd) % tgt.Grid.Nodes()), Time: 0}
	})
	cp, err := fm.Evaluate(g, sched, tgt, fm.EvalOptions{})
	if err != nil {
		return failure("E12", err)
	}
	cs, err := fm.Evaluate(g, fm.SerialSchedule(g, tgt, geom.Pt(0, 0)), tgt, fm.EvalOptions{})
	if err != nil {
		return failure("E12", err)
	}
	speedup := float64(cs.Cycles) / float64(cp.Cycles)
	okHeadroom := speedup >= 1e4
	pass = pass && okHeadroom
	t.AddRow("many-core headroom", "10^4-node grid speedup", speedup,
		"4-5 orders of magnitude", verdict(okHeadroom))

	// NoC switching ablation (A2): cut-through beats store-and-forward on
	// multi-flit messages; the model exposes switching discipline as a
	// first-class cost.
	ctTgt := fm.DefaultTarget(8, 1)
	sfGap := storeForwardGap()
	okNoC := sfGap > 1.5
	pass = pass && okNoC
	t.AddRow("NoC ablation (A2)", "SF/CT latency, 16-flit message, 8 hops", sfGap,
		">1.5x", verdict(okNoC))
	_ = ctTgt

	return Result{
		ID:    "E12",
		Claim: "the models extend simply: write-asymmetric memory penalizes write-heavy algorithms; a many-core grid offers 4-5 orders of magnitude over a single core",
		Table: t,
		Pass:  pass,
	}
}

func storeForwardGap() float64 {
	ct := nocLatency(false)
	sf := nocLatency(true)
	return sf / ct
}

func nocLatency(storeAndForward bool) float64 {
	// 16-flit (512-bit) message over 8 hops, measured via the machine's
	// network. Uncontended: CT pays serialization once, SF per hop.
	cfgMode := 0
	if storeAndForward {
		cfgMode = 1
	}
	m := newStripMachine(cfgMode)
	arr := m.Send(geom.Pt(0, 0), geom.Pt(8, 0), 16, "big")
	return arr
}
