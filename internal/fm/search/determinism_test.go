package search

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/fm"
)

// The headline claim of the parallel searcher is "same answers, faster":
// for any Workers value the results are byte-identical to the serial
// path. These tests pin that claim across a grid of seeds and sizes and
// are meant to run under -race (CI does), where the fan-out/merge
// machinery is exercised for unsynchronized sharing as well.

// candidatesEqual reports whether two candidate lists are identical,
// including names, full schedules, and every cost field.
func candidatesEqual(a, b []Candidate) bool {
	return reflect.DeepEqual(a, b)
}

func TestExhaustive2DDeterministicAcrossWorkers(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		g, dom := smallRec(t, n)
		tgt := fm.DefaultTarget(4, 1)
		tgt.MemWordsPerNode = 1 << 20
		opts := Affine2DOptions{P: 4, MaxTau: 10}

		opts.Workers = 1
		serial := Exhaustive2D(g, dom, tgt, opts)
		if len(serial) < 2 {
			t.Fatalf("n=%d: only %d candidates", n, len(serial))
		}
		for _, workers := range []int{2, 4, 8} {
			opts.Workers = workers
			par := Exhaustive2D(g, dom, tgt, opts)
			if !candidatesEqual(serial, par) {
				t.Fatalf("n=%d: workers=1 and workers=%d disagree:\n  serial: %d cands, first %q %v\n  parallel: %d cands, first %q %v",
					n, workers, len(serial), serial[0].Name, serial[0].Cost,
					len(par), par[0].Name, par[0].Cost)
			}
			// The downstream artifacts must agree too.
			if !candidatesEqual(Pareto(serial), Pareto(par)) {
				t.Fatalf("n=%d workers=%d: Pareto fronts disagree", n, workers)
			}
			for _, obj := range []Objective{MinTime, MinEnergy, MinEDP, MinFootprint} {
				if !reflect.DeepEqual(Best(serial, obj), Best(par, obj)) {
					t.Fatalf("n=%d workers=%d: Best(%v) disagrees", n, workers, obj)
				}
			}
		}
	}
}

func TestExhaustive2DDeterministicWithCache(t *testing.T) {
	g, dom := smallRec(t, 6)
	tgt := fm.DefaultTarget(4, 1)
	tgt.MemWordsPerNode = 1 << 20
	bare := Exhaustive2D(g, dom, tgt, Affine2DOptions{P: 4, MaxTau: 8, Workers: 1})
	cache := NewEvalCache()
	// Run the cached sweep twice: the second is served almost entirely
	// from the cache and must still be identical.
	for rep := 0; rep < 2; rep++ {
		cached := Exhaustive2D(g, dom, tgt, Affine2DOptions{P: 4, MaxTau: 8, Workers: 4, Cache: cache})
		if !candidatesEqual(bare, cached) {
			t.Fatalf("rep %d: cached sweep diverged from uncached", rep)
		}
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Error("second sweep produced no cache hits")
	}
}

func TestAnnealDeterministicAcrossWorkers(t *testing.T) {
	tgt := fm.DefaultTarget(4, 1)
	for _, seed := range []int64{1, 7, 42} {
		for _, size := range []int{30, 60} {
			g := randomGraph(seed, size)
			opts := AnnealOptions{Iters: 400, Seed: seed, Chains: 4, ExchangeEvery: 100}

			opts.Workers = 1
			serialSched, serialCost := Anneal(g, tgt, opts)
			for _, workers := range []int{2, 4, 8} {
				opts.Workers = workers
				sched, cost := Anneal(g, tgt, opts)
				if cost != serialCost {
					t.Fatalf("seed=%d size=%d: workers=1 cost %v, workers=%d cost %v",
						seed, size, serialCost, workers, cost)
				}
				if !reflect.DeepEqual(sched, serialSched) {
					t.Fatalf("seed=%d size=%d workers=%d: schedules differ at equal cost",
						seed, size, workers)
				}
			}
		}
	}
}

func TestAnnealDeltaMatrixBitIdentical(t *testing.T) {
	// The 4-way equivalence matrix: {Workers 1, 8} x {delta on, off} must
	// all produce byte-identical schedules and costs. Delta evaluation
	// prices candidate moves incrementally but bit-equal to the full
	// evaluator, so the Metropolis decisions — and the whole trajectory —
	// cannot depend on the toggle; workers never change answers by the
	// package's standing guarantee. Any drift in the delta evaluator that
	// escaped the differential harness would surface here as a cost or
	// schedule mismatch.
	tgt := fm.DefaultTarget(4, 2)
	for _, seed := range []int64{1, 7, 42} {
		for _, size := range []int{30, 60} {
			g := randomGraph(seed, size)
			base := AnnealOptions{Iters: 400, Seed: seed, Chains: 4, ExchangeEvery: 100}

			type cell struct {
				workers int
				disable bool
			}
			cells := []cell{{1, false}, {8, false}, {1, true}, {8, true}}
			var refSched fm.Schedule
			var refCost fm.Cost
			for i, c := range cells {
				opts := base
				opts.Workers = c.workers
				opts.DisableDelta = c.disable
				sched, cost := Anneal(g, tgt, opts)
				if i == 0 {
					refSched, refCost = sched, cost
					continue
				}
				if cost != refCost {
					t.Fatalf("seed=%d size=%d workers=%d delta=%v: cost %+v, want %+v",
						seed, size, c.workers, !c.disable, cost, refCost)
				}
				if !reflect.DeepEqual(sched, refSched) {
					t.Fatalf("seed=%d size=%d workers=%d delta=%v: schedules differ at equal cost",
						seed, size, c.workers, !c.disable)
				}
			}
		}
	}
}

func TestAnnealDeltaCrossEngineResume(t *testing.T) {
	// Checkpoints store schedules and RNG draw counts, not evaluator
	// state, so a mid-run snapshot taken by one engine must restore into
	// the other with a bit-identical final answer: run delta-on to a
	// mid-run barrier, resume delta-off (and vice versa), compare against
	// the uninterrupted run.
	tgt := fm.DefaultTarget(4, 1)
	g := randomGraph(17, 40)
	base := AnnealOptions{Iters: 300, Seed: 17, Chains: 2, ExchangeEvery: 100, Workers: 1}
	wantSched, wantCost := Anneal(g, tgt, base)

	for _, firstDelta := range []bool{true, false} {
		dir := t.TempDir()
		cpPath := filepath.Join(dir, "anneal.ckpt")
		midPath := filepath.Join(dir, "mid.ckpt")
		opts := base
		opts.CheckpointPath = cpPath
		opts.DisableDelta = !firstDelta

		captured := false
		testBarrierHook = func(done int) {
			if !captured && done > 0 && done < opts.Iters {
				data, err := os.ReadFile(cpPath)
				if err != nil {
					t.Errorf("barrier hook: %v", err)
					return
				}
				if err := os.WriteFile(midPath, data, 0o644); err != nil {
					t.Errorf("barrier hook: %v", err)
					return
				}
				captured = true
			}
		}
		if _, _, err := AnnealResumable(g, tgt, opts); err != nil {
			testBarrierHook = nil
			t.Fatal(err)
		}
		testBarrierHook = nil
		if !captured {
			t.Fatal("no mid-run checkpoint captured")
		}

		opts.CheckpointPath = midPath
		opts.Resume = true
		opts.DisableDelta = firstDelta // resume on the other engine
		sched, cost, err := AnnealResumable(g, tgt, opts)
		if err != nil {
			t.Fatal(err)
		}
		if cost != wantCost || !reflect.DeepEqual(sched, wantSched) {
			t.Fatalf("cross-engine resume (checkpointed with delta=%v) diverged: %+v vs %+v",
				firstDelta, cost, wantCost)
		}
	}
}

func TestAnnealDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// The guarantee is "regardless of GOMAXPROCS", which also covers the
	// Workers=0 default (one worker per CPU): changing the CPU count must
	// not change answers.
	tgt := fm.DefaultTarget(4, 1)
	g := randomGraph(13, 40)
	opts := AnnealOptions{Iters: 300, Seed: 13, Chains: 3, ExchangeEvery: 75}
	_, ref := Anneal(g, tgt, opts)
	for _, procs := range []int{1, 2, 4} {
		prev := runtime.GOMAXPROCS(procs)
		_, got := Anneal(g, tgt, opts)
		runtime.GOMAXPROCS(prev)
		if got != ref {
			t.Fatalf("GOMAXPROCS=%d changed the result: %v vs %v", procs, got, ref)
		}
	}
}

func TestAnnealSingleChainMatchesClassic(t *testing.T) {
	// Chains=1 must reproduce the pre-parallel annealer: same seed, same
	// trajectory, same best — the multi-chain machinery degenerates away.
	tgt := fm.DefaultTarget(3, 1)
	g := randomGraph(9, 30)
	s1, c1 := Anneal(g, tgt, AnnealOptions{Iters: 200, Seed: 11})
	s2, c2 := Anneal(g, tgt, AnnealOptions{Iters: 200, Seed: 11, Chains: 1, Workers: 8})
	if c1 != c2 || !reflect.DeepEqual(s1, s2) {
		t.Fatalf("single-chain results diverged: %v vs %v", c1, c2)
	}
}

func TestAnnealChainsShiftSeeds(t *testing.T) {
	// RNG hygiene: chain i draws from Seed+i, so a K-chain run's winner
	// is reproducible and chain 0 of any run equals the classic annealer
	// with the same seed. A 4-chain search can therefore never do worse
	// than the single-chain search under the same Seed.
	tgt := fm.DefaultTarget(4, 1)
	g := randomGraph(5, 50)
	_, single := Anneal(g, tgt, AnnealOptions{Iters: 300, Seed: 21})
	_, multi := Anneal(g, tgt, AnnealOptions{Iters: 300, Seed: 21, Chains: 4, ExchangeEvery: -1})
	if multi.Cycles > single.Cycles {
		t.Errorf("4 chains (%d cycles) worse than the chain-0 baseline (%d cycles)",
			multi.Cycles, single.Cycles)
	}
}
