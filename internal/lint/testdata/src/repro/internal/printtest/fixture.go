// Fixture for the printban analyzer: internal packages stay silent.
package printtest

import (
	"fmt"
	"io"
	"os"
)

func Bad() {
	fmt.Println("hello") // want "fmt.Println in internal package"
	fmt.Printf("%d\n", 1) // want "fmt.Printf in internal package"
	fmt.Print("x")       // want "fmt.Print in internal package"
	print("builtin")     // want "builtin print in internal package"
	println("builtin")   // want "builtin println in internal package"
}

func Fine(w io.Writer) string {
	fmt.Fprintln(w, "writer-directed output is the caller's choice")
	fmt.Fprintf(os.Stderr, "so is an explicit stderr stream\n")
	return fmt.Sprintf("formatting is not printing")
}

func AllowedPrint() {
	//lint:allow print(debug helper compiled out of release builds)
	fmt.Println("allowed")
}
