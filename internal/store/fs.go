// The FS seam: every byte the store reads or writes flows through this
// interface, mirroring the Clock seam in internal/serve. Production
// stores run on OS (the real filesystem); crash-recovery drills run on
// FaultFS (faultfs.go), which injects short writes, fsync failures,
// flipped bytes, and mid-write process death from a seeded, fully
// deterministic schedule. The store never touches the os package
// directly, so every durability claim it makes is testable against an
// adversarial disk.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the slice of *os.File the store needs: sequential reads,
// appends, fsync, close.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's written bytes to stable storage. Until
	// Sync returns nil, a crash may lose or tear anything written since
	// the previous successful Sync.
	Sync() error
}

// FS is the store's filesystem seam. Path arguments are ordinary paths;
// implementations must not interpret them beyond passing them through
// (FaultFS wraps OS and must compose transparently).
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create truncates-or-creates name for writing.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// OpenRead opens name for reading.
	OpenRead(name string) (File, error)
	// Rename atomically moves oldname to newname (same directory).
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// Size returns the byte size of name.
	Size(name string) (int64, error)
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making renames and newly
	// created files in it durable. (A file fsync alone does not persist
	// the directory entry pointing at the file.)
	SyncDir(dir string) error
}

// OS is the production FS: a thin pass-through to the os package.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// OpenRead implements FS.
func (OS) OpenRead(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Size implements FS.
func (OS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("store: sync dir %s: %w", filepath.Base(dir), err)
	}
	return d.Close()
}
