package obs

import "net/http"

// Handler returns an http.Handler serving the registry's JSON snapshot —
// the one metrics endpoint mapd and any future daemon share. Each
// request freezes the registry at that instant; for unchanged metric
// values the body is byte-identical across requests (maps marshal with
// sorted keys), so scraping is diff-friendly. A nil registry serves the
// empty snapshot, keeping the endpoint nil-safe like the rest of the
// API.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A write error means the client hung up; there is nothing useful
		// to do with it here and the library must stay silent.
		_ = r.Snapshot().WriteJSON(w)
	})
}
