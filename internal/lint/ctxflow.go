package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// ctxflowPkgs are the package subtrees where every operation sits on a
// request path: the HTTP server, the persistent store it journals to,
// and the search engine its jobs drive. Inside them a context must flow
// from the request — minting a fresh root context or dropping a ctx
// parameter on the floor severs the deadline/cancellation chain that
// the batchCtx drill (DESIGN.md) proves end to end at runtime.
var ctxflowPkgs = []string{
	"repro/internal/serve",
	"repro/internal/store",
	"repro/internal/fm/search",
	"repro/internal/cluster",
}

// Ctxflow enforces context hygiene on request paths: no
// context.Background()/TODO() (a handler that mints its own root
// context escapes the server's deadline), no nil contexts at call
// sites, and no context parameters that a function accepts but never
// threads onward. Server-owned contexts that must outlive requests
// (batch lifecycles, drains) carry //lint:allow ctx(reason); a
// deliberately unused parameter is named _.
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "request-path packages must thread request-derived contexts: no context.Background/TODO, " +
		"no nil contexts, no dropped ctx parameters (escape hatch: //lint:allow ctx(reason))",
	Run: runCtxflow,
}

func ctxflowScope(path string) bool {
	for _, p := range ctxflowPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runCtxflow(pass *analysis.Pass) (interface{}, error) {
	if !ctxflowScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncDecl:
				checkDroppedCtx(pass, file, e)
			case *ast.CallExpr:
				checkCtxCall(pass, file, e)
			}
			return true
		})
	}
	return nil, nil
}

// checkCtxCall flags context.Background()/TODO() calls and nil passed
// where a context.Context parameter is expected.
func checkCtxCall(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) {
	if fn := contextRootFunc(pass.TypesInfo, call); fn != "" {
		if !allowed(pass.Fset, file, call.Pos(), "ctx") {
			pass.Reportf(call.Pos(), "context.%s() on a request path severs deadline propagation; derive from the request context", fn)
		}
	}
	// nil arguments in context.Context positions.
	tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !isContextType(pt) {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || !atv.IsNil() {
			continue
		}
		if !allowed(pass.Fset, file, arg.Pos(), "ctx") {
			pass.Reportf(arg.Pos(), "nil context passed on a request path; pass the caller's ctx")
		}
	}
}

// contextRootFunc returns "Background" or "TODO" when call invokes the
// corresponding context constructor, else "".
func contextRootFunc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name()
	}
	return ""
}

// checkDroppedCtx flags functions that accept a context.Context but
// never use it: the caller's deadline dies in this frame. A parameter
// kept only to satisfy an interface is named _.
func checkDroppedCtx(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl) {
	if fn.Body == nil || fn.Type.Params == nil {
		return
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || !isContextType(obj.Type()) {
				continue
			}
			if usedIn(pass.TypesInfo, fn.Body, obj) {
				continue
			}
			if !allowed(pass.Fset, file, name.Pos(), "ctx") &&
				!allowed(pass.Fset, file, fn.Body.Pos(), "ctx") {
				pass.Reportf(name.Pos(), "context parameter %s is dropped; thread it to callees or name it _", name.Name)
			}
		}
	}
}

func usedIn(info *types.Info, body *ast.BlockStmt, obj *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
