// A minimal leveled JSONL logger — the structured replacement for the
// ad-hoc fmt.Fprintln(os.Stderr, ...) lines cmd/mapd grew. One line per
// event, keys sorted by the JSON marshaler, so log output is grep- and
// join-friendly: events about a request carry its trace_id, which is
// exactly the ID /debug/traces exports, making "slow request in the
// log" and "slow trace in the recorder" the same object. Like the rest
// of obs, a nil *Logger is the disabled logger and every method is a
// free no-op.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

const (
	// LevelDebug is development noise, off by default.
	LevelDebug Level = iota
	// LevelInfo is normal operational events.
	LevelInfo
	// LevelWarn is degraded-but-continuing conditions.
	LevelWarn
	// LevelError is failures.
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// Logger writes one JSON object per line: {"level":..., "msg":...,
// plus caller key/value pairs, plus "ts" when a time source is set}.
// Safe for concurrent use; a nil *Logger drops everything.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
}

// NewLogger returns a logger writing JSONL to w, dropping events below
// min. Timestamps are off until WithNow supplies a time source — a
// deliberate inversion: the logger never reads the wall clock on its
// own, so log output in deterministic drills stays deterministic.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// WithNow sets the timestamp source (typically time.Now in production,
// nothing in deterministic drills) and returns the logger.
func (l *Logger) WithNow(now func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	l.now = now
	return l
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil || level < l.min {
		return
	}
	m := make(map[string]any, len(kv)/2+3)
	m["level"] = level.String()
	m["msg"] = msg
	if l.now != nil {
		m["ts"] = l.now().UTC().Format(time.RFC3339Nano)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		m[fmt.Sprint(kv[i])] = normalize(kv[i+1])
	}
	if len(kv)%2 != 0 {
		m[fmt.Sprint(kv[len(kv)-1])] = "(MISSING)"
	}
	data, err := json.Marshal(m)
	if err != nil {
		// A value the marshaler rejects must not silence the event; fall
		// back to the guaranteed-marshalable core.
		data, _ = json.Marshal(map[string]any{
			"level": level.String(), "msg": msg, "log_error": err.Error(),
		})
	}
	l.mu.Lock()
	_, _ = l.w.Write(append(data, '\n'))
	l.mu.Unlock()
}

// normalize renders values the JSON marshaler would reject or mangle
// (errors, Stringers, durations) as strings.
func normalize(v any) any {
	switch x := v.(type) {
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	default:
		return v
	}
}
