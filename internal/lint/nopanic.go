package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// NoPanic enforces the repo's error-contract: exported functions in
// internal library packages return errors, they do not panic. The
// runtime backstop is the fuzz/property tests that feed hostile inputs
// through fm.Check and friends; this analyzer rejects the regression at
// compile time instead.
//
// A panic that guards a provably-unreachable invariant may stay, but
// must carry //lint:allow panic(reason) — the allowlist is the audit
// trail and is expected to shrink over time.
var NoPanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "exported functions in internal packages must return errors instead of panicking " +
		"(escape hatch: //lint:allow panic(reason) for unreachable invariant checks)",
	Run: runNoPanic,
}

func runNoPanic(pass *analysis.Pass) (interface{}, error) {
	if !internalPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !exportedFunc(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
					return true
				}
				if allowed(pass.Fset, file, call.Pos(), "panic") {
					return true
				}
				pass.Reportf(call.Pos(),
					"exported %s panics; return an error or annotate with //lint:allow panic(reason)",
					fn.Name.Name)
				return true
			})
		}
	}
	return nil, nil
}
