// Cluster drills: loadgen owns a whole fleet — maprouter plus N mapd
// shards — the way the restart drill owns a single server, and asserts
// the cluster tier's contracts over the wire:
//
// Steady (-cluster): spawn the fleet, drive -requests distinct evals
// through the router, and require all 200s, zero failovers, and the
// work actually spread across shards (content routing, not a hot
// single shard).
//
// Kill drill (-cluster -cluster-kill): three phases over the same
// request sequence. Phase A warms the fleet and records each request's
// primary shard from the X-Cluster-Primary header. Then one shard —
// the primary of the first request — dies by SIGKILL, no drain. Phase
// B replays the sequence: every answer must still be 200 with costs
// byte-identical to phase A (failover is invisible to clients), and
// the router's failover counter must equal EXACTLY the number of
// phase-B requests whose primary was the dead shard. Phase C restarts
// the shard over its store directory, forces a probe so the router
// marks it up, replays again: the counter must not move, the rejoined
// shard must serve its keys again, and it must answer them warm from
// the store — serve.store.hits on the restarted shard equals the
// number of phase-C requests it served.
//
// Search drill (-cluster -cluster-search): spawn a frozen-clock fleet,
// run ONE scatter-gather anneal through the router, write the raw
// response bytes to -search-out, and shut the router down gracefully
// so it exports its trace buffer to -cluster-trace-out. CI runs the
// drill twice and diffs both files byte for byte.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// genClusterBodies builds n distinct eval requests that also spread
// across shards: the routing key is fm.Fingerprint(graph, target), so
// unlike the restart drill's bodies (one graph, many schedules — one
// key) these vary the recurrence dims too. Distinct strides keep every
// (graph, schedule, target) triple unique, which is what makes the
// kill drill's store-hit count exact.
func genClusterBodies(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(900)
	bodies := make([]string, n)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{
			"recurrence": {"dims": [%d, %d], "deps": [[1, 0], [0, 1]]},
			"target": {"width": 4},
			"schedules": [{"kind": "antidiagonal", "stride": %d}],
			"deadline_ms": 60000
		}`, 5+rng.Intn(6), 5+rng.Intn(6), 100+perm[i])
	}
	return bodies
}

// clusterMetrics is the router's aggregated /v1/metrics document.
type clusterMetrics struct {
	Cluster metricsSnapshot   `json:"cluster"`
	Shards  []json.RawMessage `json:"shards"`
}

// callHdr is client.call plus the response headers and raw body — the
// cluster drills read the X-Cluster-* attribution headers and compare
// answers byte for byte.
func (c *client) callHdr(method, path, body string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, resp.Header, nil, err
	}
	return resp.StatusCode, resp.Header, data, nil
}

// fleet is the spawned cluster: one router process, N shard processes,
// and the addressing to reach each of them directly.
type fleet struct {
	router    *exec.Cmd
	routerURL string
	shards    []*exec.Cmd
	shardURLs []string
	storeDirs []string
}

// killAll tears the fleet down hard; used on every error path.
func (f *fleet) killAll() {
	if f.router != nil {
		_ = f.router.Process.Kill()
		_ = f.router.Wait()
		f.router = nil
	}
	for i, sh := range f.shards {
		if sh != nil {
			_ = sh.Process.Kill()
			_ = sh.Wait()
			f.shards[i] = nil
		}
	}
}

// waitHealthy polls url's /healthz until it answers 200.
func waitHealthy(hc *http.Client, url, what string) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := hc.Get(url + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s on %s never became healthy", what, url)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// spawnShard starts one mapd shard over storeDir.
func spawnShard(hc *http.Client, mapdBin, listen, storeDir string, frozen bool) (*exec.Cmd, error) {
	args := []string{"-listen", listen, "-store-dir", storeDir}
	if frozen {
		args = append(args, "-frozen-clock")
	}
	cmd := exec.Command(mapdBin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", mapdBin, err)
	}
	if err := waitHealthy(hc, "http://"+listen, "mapd shard"); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	return cmd, nil
}

// spawnFleet brings up N shards then the router over them. Hedging is
// disabled and probing is on-demand only (POST /v1/probe), so every
// count the drills assert is a pure function of the request sequence.
func spawnFleet(hc *http.Client, mapdBin, routerBin string, shardsN, basePort int, storeBase string, frozen bool, traceOut string) (*fleet, error) {
	f := &fleet{}
	for i := 0; i < shardsN; i++ {
		listen := fmt.Sprintf("127.0.0.1:%d", basePort+1+i)
		dir := filepath.Join(storeBase, fmt.Sprintf("shard%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			f.killAll()
			return nil, err
		}
		sh, err := spawnShard(hc, mapdBin, listen, dir, frozen)
		if err != nil {
			f.killAll()
			return nil, err
		}
		f.shards = append(f.shards, sh)
		f.shardURLs = append(f.shardURLs, "http://"+listen)
		f.storeDirs = append(f.storeDirs, dir)
	}
	routerListen := fmt.Sprintf("127.0.0.1:%d", basePort)
	args := []string{
		"-listen", routerListen,
		"-shards", strings.Join(f.shardURLs, ","),
		"-replicas", "2",
		"-hedge-delay", "-1ms",
		"-probe-every", "0",
	}
	if frozen {
		args = append(args, "-frozen-clock")
	}
	if traceOut != "" {
		args = append(args, "-trace-out", traceOut)
	}
	cmd := exec.Command(routerBin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		f.killAll()
		return nil, fmt.Errorf("start %s: %w", routerBin, err)
	}
	f.router = cmd
	f.routerURL = "http://" + routerListen
	if err := waitHealthy(hc, f.routerURL, "maprouter"); err != nil {
		f.killAll()
		return nil, err
	}
	return f, nil
}

// routerCounters scrapes the router's own cluster.* counters.
func routerCounters(c *client) (map[string]int64, error) {
	var agg clusterMetrics
	if status, _, err := c.call("GET", "/v1/metrics", "", &agg); err != nil || status != 200 {
		return nil, fmt.Errorf("router metrics scrape: status %d, %v", status, err)
	}
	return agg.Cluster.Counters, nil
}

// clusterPhase replays the bodies sequentially through the router,
// requiring a clean 200 for every one, and returns per-request costs,
// serving shard, and primary shard (both from the attribution headers).
func clusterPhase(c *client, name string, bodies []string) (costs []string, served, primary []int, err error) {
	costs = make([]string, len(bodies))
	served = make([]int, len(bodies))
	primary = make([]int, len(bodies))
	for i, body := range bodies {
		status, hdr, data, err := c.callHdr("POST", "/v1/eval", body)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s request %d: %w", name, i, err)
		}
		if status != 200 {
			return nil, nil, nil, fmt.Errorf("%s request %d: status %d: %s", name, i, status, data)
		}
		var ev evalResponse
		if err := json.Unmarshal(data, &ev); err != nil {
			return nil, nil, nil, fmt.Errorf("%s request %d: decode: %w", name, i, err)
		}
		if ev.Degraded || len(ev.Costs) == 0 {
			return nil, nil, nil, fmt.Errorf("%s request %d: degraded=%v, %d cost bytes", name, i, ev.Degraded, len(ev.Costs))
		}
		costs[i] = string(ev.Costs)
		if _, err := fmt.Sscanf(hdr.Get("X-Cluster-Shard"), "%d", &served[i]); err != nil {
			return nil, nil, nil, fmt.Errorf("%s request %d: bad X-Cluster-Shard %q", name, i, hdr.Get("X-Cluster-Shard"))
		}
		if _, err := fmt.Sscanf(hdr.Get("X-Cluster-Primary"), "%d", &primary[i]); err != nil {
			return nil, nil, nil, fmt.Errorf("%s request %d: bad X-Cluster-Primary %q", name, i, hdr.Get("X-Cluster-Primary"))
		}
	}
	return costs, served, primary, nil
}

// runCluster dispatches the three cluster drills.
func runCluster(mapdBin, routerBin, storeDir string, shardsN, basePort, requests int, seed int64, kill, search bool, searchOut, traceOut string, timeout time.Duration) (*runReport, error) {
	if mapdBin == "" || routerBin == "" {
		return nil, fmt.Errorf("-cluster needs -mapd and -router (paths to the binaries)")
	}
	if shardsN < 2 {
		return nil, fmt.Errorf("-cluster-shards must be at least 2 (failover needs a replica)")
	}
	if storeDir == "" {
		dir, err := os.MkdirTemp("", "loadgen-cluster-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		storeDir = dir
	}
	hc := &http.Client{Timeout: timeout}
	f, err := spawnFleet(hc, mapdBin, routerBin, shardsN, basePort, storeDir, search, traceOut)
	if err != nil {
		return nil, err
	}
	defer f.killAll()
	c := &client{base: f.routerURL, http: hc}
	switch {
	case search:
		return runClusterSearch(c, f, seed, searchOut)
	case kill:
		return runClusterKill(c, f, hc, mapdBin, requests, seed)
	default:
		return runClusterSteady(c, requests, seed, shardsN)
	}
}

func runClusterSteady(c *client, requests int, seed int64, shardsN int) (*runReport, error) {
	bodies := genClusterBodies(seed, requests)
	rep := &runReport{Mode: "cluster", Requests: requests}
	_, served, _, err := clusterPhase(c, "steady", bodies)
	if err != nil {
		return rep, err
	}
	counters, err := routerCounters(c)
	if err != nil {
		return rep, err
	}
	rep.OK = int64(requests)
	usedShards := map[int]bool{}
	for _, s := range served {
		usedShards[s] = true
	}
	var routed int64
	for i := 0; i < shardsN; i++ {
		routed += counters[fmt.Sprintf("cluster.routes.shard%d", i)]
	}
	fmt.Printf("loadgen cluster: requests=%d ok=%d err5xx=0 failovers=%d shards_used=%d\n",
		requests, rep.OK, counters["cluster.failovers"], len(usedShards))
	switch {
	case counters["cluster.failovers"] != 0:
		return rep, fmt.Errorf("%d failovers on a healthy fleet, want 0", counters["cluster.failovers"])
	case counters["cluster.no_replica"] != 0:
		return rep, fmt.Errorf("%d no-replica refusals on a healthy fleet", counters["cluster.no_replica"])
	case routed != int64(requests):
		return rep, fmt.Errorf("per-shard route counts sum to %d, want %d", routed, requests)
	case len(usedShards) < 2:
		return rep, fmt.Errorf("all work landed on one shard — content routing is not spreading")
	}
	return rep, nil
}

func runClusterKill(c *client, f *fleet, hc *http.Client, mapdBin string, requests int, seed int64) (*runReport, error) {
	bodies := genClusterBodies(seed, requests)
	rep := &runReport{Mode: "cluster-kill", Requests: requests}

	// Phase A: warm fleet; learn each key's primary from the router.
	costsA, _, primaries, err := clusterPhase(c, "phase A", bodies)
	if err != nil {
		return rep, err
	}
	counters, err := routerCounters(c)
	if err != nil {
		return rep, err
	}
	if counters["cluster.failovers"] != 0 {
		return rep, fmt.Errorf("phase A saw %d failovers on a healthy fleet", counters["cluster.failovers"])
	}

	// The victim: the primary of the first request — guaranteed to own
	// at least one key, so the failover counter must move in phase B.
	victim := primaries[0]
	victimKeys := 0
	for _, p := range primaries {
		if p == victim {
			victimKeys++
		}
	}
	if err := f.shards[victim].Process.Kill(); err != nil {
		return rep, fmt.Errorf("kill shard %d: %w", victim, err)
	}
	_ = f.shards[victim].Wait()
	f.shards[victim] = nil
	fmt.Fprintf(os.Stderr, "loadgen: shard %d killed (SIGKILL); %d of %d keys owned it\n", victim, victimKeys, requests)

	// Phase B: replay. Clients must see zero errors and identical
	// answers; the router must count exactly one failover per request
	// whose primary died.
	costsB, servedB, _, err := clusterPhase(c, "phase B", bodies)
	if err != nil {
		return rep, err
	}
	for i := range costsA {
		if costsA[i] != costsB[i] {
			return rep, fmt.Errorf("answer %d changed across the kill:\n  before: %s\n  after:  %s", i, costsA[i], costsB[i])
		}
	}
	for i, s := range servedB {
		if s == victim {
			return rep, fmt.Errorf("phase B request %d reportedly served by the dead shard %d", i, victim)
		}
	}
	counters, err = routerCounters(c)
	if err != nil {
		return rep, err
	}
	failovers := counters["cluster.failovers"]
	if failovers != int64(victimKeys) {
		return rep, fmt.Errorf("phase B failovers = %d, want exactly %d (one per request whose primary died)", failovers, victimKeys)
	}

	// Phase C: the shard rejoins over its own store directory; a forced
	// probe tells the router, and its keys come home warm.
	listen := strings.TrimPrefix(f.shardURLs[victim], "http://")
	sh, err := spawnShard(hc, mapdBin, listen, f.storeDirs[victim], false)
	if err != nil {
		return rep, fmt.Errorf("restart shard %d: %w", victim, err)
	}
	f.shards[victim] = sh
	if status, _, err := c.call("POST", "/v1/probe", "", nil); err != nil || status != 200 {
		return rep, fmt.Errorf("probe after rejoin: status %d, %v", status, err)
	}
	costsC, servedC, _, err := clusterPhase(c, "phase C", bodies)
	if err != nil {
		return rep, err
	}
	for i := range costsA {
		if costsA[i] != costsC[i] {
			return rep, fmt.Errorf("answer %d changed after the rejoin:\n  before: %s\n  after:  %s", i, costsA[i], costsC[i])
		}
	}
	rejoinedServed := 0
	for _, s := range servedC {
		if s == victim {
			rejoinedServed++
		}
	}
	if rejoinedServed != victimKeys {
		return rep, fmt.Errorf("rejoined shard served %d requests in phase C, want its %d keys back", rejoinedServed, victimKeys)
	}
	counters, err = routerCounters(c)
	if err != nil {
		return rep, err
	}
	if counters["cluster.failovers"] != failovers {
		return rep, fmt.Errorf("failovers moved from %d to %d in phase C — the rejoined shard should serve cleanly", failovers, counters["cluster.failovers"])
	}

	// Warmth: the rejoined shard lost its in-process cache with the
	// SIGKILL, so every phase-C answer it served must have come from the
	// recovered store — exactly one hit per request.
	shardClient := &client{base: f.shardURLs[victim], http: hc}
	var snap metricsSnapshot
	if status, _, err := shardClient.call("GET", "/v1/metrics", "", &snap); err != nil || status != 200 {
		return rep, fmt.Errorf("rejoined shard metrics scrape: status %d, %v", status, err)
	}
	storeHits := snap.Counters["serve.store.hits"]
	if storeHits != int64(rejoinedServed) {
		return rep, fmt.Errorf("rejoined shard answered %d from the store, want all %d of its phase-C keys", storeHits, rejoinedServed)
	}

	rep.OK = int64(3 * requests)
	rep.StoreHits = storeHits
	rep.Failovers = failovers
	fmt.Printf("loadgen cluster-kill: requests=%d ok=%d err5xx=0 failovers=%d expected_failovers=%d store_hits=%d rejoined_served=%d\n",
		requests, rep.OK, failovers, victimKeys, storeHits, rejoinedServed)
	return rep, nil
}

// clusterSearchBody builds the drill's one scatter-gather anneal.
func clusterSearchBody(seed int64) string {
	return fmt.Sprintf(`{
	"recurrence": {"dims": [6, 6], "deps": [[1, 0], [0, 1]]},
	"target": {"width": 4, "height": 4},
	"iters": 400, "chains": 2, "seed": %d
}`, seed)
}

func runClusterSearch(c *client, f *fleet, seed int64, searchOut string) (*runReport, error) {
	rep := &runReport{Mode: "cluster-search", Requests: 1}
	status, _, data, err := c.callHdr("POST", "/v1/search", clusterSearchBody(seed))
	if err != nil {
		return rep, fmt.Errorf("scatter-gather search: %w", err)
	}
	if status != 200 {
		return rep, fmt.Errorf("scatter-gather search: status %d: %s", status, data)
	}
	var resp struct {
		Cluster struct {
			Rounds      int   `json:"rounds"`
			Replicas    []int `json:"replicas"`
			WinnerShard int   `json:"winner_shard"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return rep, fmt.Errorf("decode search response: %w", err)
	}
	if resp.Cluster.Rounds == 0 || len(resp.Cluster.Replicas) == 0 {
		return rep, fmt.Errorf("response carries no cluster addendum: %s", data)
	}
	if searchOut != "" {
		if err := os.WriteFile(searchOut, data, 0o644); err != nil {
			return rep, fmt.Errorf("write search response: %w", err)
		}
	}

	// Graceful router shutdown so the trace buffer is exported (the
	// -trace-out flag was passed at spawn); shards can die hard.
	if err := f.router.Process.Signal(syscall.SIGTERM); err != nil {
		return rep, fmt.Errorf("stop router: %w", err)
	}
	if err := f.router.Wait(); err != nil {
		return rep, fmt.Errorf("router exit: %w", err)
	}
	f.router = nil

	rep.OK = 1
	fmt.Printf("loadgen cluster-search: status=200 rounds=%d replicas=%d winner_shard=%d bytes=%d\n",
		resp.Cluster.Rounds, len(resp.Cluster.Replicas), resp.Cluster.WinnerShard, len(data))
	return rep, nil
}
